(* A per-module def/use graph over Typedtree, with the per-node facts
   the typed rules (R8/R9/R10) consume and a transitive-closure engine
   that produces witness call chains.

   Nodes are module-level value bindings ("Rtr.Cache_server.handle") —
   everything inside a binding's body, local functions included, is
   attributed to that binding. Edges are *references*: any identifier
   use that resolves to another node counts, so passing a function as
   a value keeps it reachable (an over-approximation in the safe
   direction for all three rules). Closures handed to the domain pool
   or to the netsim clock become synthetic nodes
   ("...publish.<fun:42>") so submissions have a root to start from.

   Resolution is name-based, mirroring how dune-wrapped units appear
   in typed paths: the unit "Rtr__Cache_server" is normalized to
   "Rtr.Cache_server", and a reference recorded as
   "Rtr.Cache_server.handle" resolves directly. References through a
   local module alias ("Vrp.exact" for Rpki.Vrp) fall back to a
   last-component unit index; an ambiguous fallback resolves to
   nothing rather than to the wrong node. Same-unit references resolve
   exactly, by Ident stamp. *)

type fact_kind =
  | Alloc
  | Mutates
  | Raises
  | Handle_escape
  | Store_reset
  | Cross_store
  | Unsafe_idx
  | Idx_guard

type fact = {
  kind : fact_kind;
  detail : string;
  fact_line : int;
  fact_col : int;
}

type call = {
  callee : string;
  call_line : int;
  guarded : bool;
      (** The reference sits under a [try] with a catch-all handler:
          exceptions from the callee cannot escape, so R10 does not
          follow the edge. R8/R9 still do. *)
}

type node = {
  id : string;
  file : string;
  line : int;
  attrs : string list;
  mutable calls : call list;
  mutable facts : fact list;
}

type sub_kind = Pool_task | Event_callback

type submission = {
  sub_kind : sub_kind;
  sub_root : string;  (** node id the task/callback starts at *)
  sub_file : string;
  sub_line : int;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  mutable order : string list;  (** insertion order, reversed *)
  unit_index : (string, string list) Hashtbl.t;
      (** last unit-path component -> normalized unit ids *)
  mutable submissions : submission list;
}

let create () =
  { nodes = Hashtbl.create 256;
    order = [];
    unit_index = Hashtbl.create 64;
    submissions = [] }

let find t id = Hashtbl.find_opt t.nodes id

let nodes t =
  List.rev_map (fun id -> Hashtbl.find t.nodes id) t.order
  |> List.sort (fun a b -> String.compare a.id b.id)

let node_count t = List.length t.order

let submissions t kind =
  List.filter (fun s -> s.sub_kind = kind) (List.rev t.submissions)

let add_node t ~id ~file ~line ?(attrs = []) ?(facts = []) ?(calls = []) () =
  let n = { id; file; line; attrs; calls; facts } in
  if not (Hashtbl.mem t.nodes id) then begin
    Hashtbl.replace t.nodes id n;
    t.order <- id :: t.order
  end;
  n

let add_submission t ~kind ~root ~file ~line =
  let s = { sub_kind = kind; sub_root = root; sub_file = file; sub_line = line } in
  if
    not
      (List.exists
         (fun o ->
           o.sub_kind = kind && o.sub_line = line
           && String.equal o.sub_file file
           && String.equal o.sub_root root)
         t.submissions)
  then t.submissions <- s :: t.submissions

(* --- reachability ---------------------------------------------------- *)

(* BFS from [root], skipping nodes whose binding carries [waiver] (a
   waiver anywhere on a path kills every finding beyond it) and —
   unless [follow_guarded] — edges made under a catch-all [try].
   Returns each reachable node with its witness chain (root first,
   node last); the chain is the first (hence a shortest) path found,
   and the traversal order is deterministic: edges are kept in source
   order. *)
let reach t ~waiver ~follow_guarded root_id =
  match find t root_id with
  | None -> []
  | Some root ->
    let waived n = List.exists (String.equal waiver) n.attrs in
    if waived root then []
    else begin
      let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      Hashtbl.replace seen root_id ();
      let out = ref [ (root, [ root_id ]) ] in
      let queue = Queue.create () in
      Queue.add (root, [ root_id ]) queue;
      while not (Queue.is_empty queue) do
        let n, rev_chain_holder = Queue.pop queue in
        List.iter
          (fun c ->
            if (follow_guarded || not c.guarded) && not (Hashtbl.mem seen c.callee) then
              match find t c.callee with
              | Some callee when not (waived callee) ->
                Hashtbl.replace seen c.callee ();
                let entry = (callee, rev_chain_holder @ [ c.callee ]) in
                out := entry :: !out;
                Queue.add entry queue
              | Some _ | None -> ())
          n.calls
      done;
      List.rev !out
    end

(* --- building from cmts ---------------------------------------------- *)

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let attr_payload_nonempty (a : Parsetree.attribute) =
  match a.attr_payload with Parsetree.PStr [] -> false | _ -> true

let has_justified_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt name && attr_payload_nonempty a)
    attrs

(* Binding attributes as seen by the rules. [lint.unsafe_idx_ok]
   demands a justification payload — an empty waiver is dropped here,
   so it waives nothing and R13 still fires. *)
let binding_attr_names (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "lint.unsafe_idx_ok" && not (attr_payload_nonempty a)
      then None
      else Some a.attr_name.txt)
    attrs

(* Split a normalized dotted path into components, expanding any
   dune-wrapped component left in a raw path. *)
let path_parts p =
  String.split_on_char '.' (Cmt_loader.normalize_modname (Path.name p))

let drop_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* Container-mutating functions (mirrors rule R3's syntactic list;
   Atomic is deliberately absent — it is the sanctioned cross-domain
   primitive). *)
let mutator_modules = [ "Hashtbl"; "Buffer"; "Stack"; "Queue"; "Array"; "Bytes" ]

let mutator_fns =
  [ "set"; "add"; "replace"; "remove"; "reset"; "clear"; "truncate"; "push"; "pop";
    "add_string"; "add_char"; "add_bytes"; "add_buffer"; "add_substring"; "fill";
    "blit"; "unsafe_set" ]

let mem_string s l = List.exists (String.equal s) l

let is_container_mutation parts =
  match List.rev (drop_stdlib parts) with
  | f :: m :: _ -> mem_string f mutator_fns && mem_string m mutator_modules
  | _ -> false

(* Exception-raising primitives and well-known partial stdlib
   functions. Out-of-bounds Array/Bytes/String access is deliberately
   not here: flagging every index read would drown the signal. *)
let raise_primitives = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let raising_externals =
  [ [ "Printexc"; "raise_with_backtrace" ]; [ "Option"; "get" ]; [ "List"; "hd" ];
    [ "List"; "tl" ]; [ "List"; "nth" ]; [ "List"; "find" ]; [ "Hashtbl"; "find" ];
    [ "Queue"; "pop" ]; [ "Queue"; "take" ]; [ "Queue"; "peek" ]; [ "Stack"; "pop" ];
    [ "Stack"; "top" ]; [ "int_of_string" ]; [ "float_of_string" ];
    [ "Int32"; "of_string" ]; [ "Int64"; "of_string" ]; [ "Sys"; "getenv" ] ]

let raising_external parts =
  let parts = drop_stdlib parts in
  match parts with
  | [ f ] when mem_string f raise_primitives -> Some f
  | _ ->
    if List.exists (List.equal String.equal parts) raising_externals then
      Some (String.concat "." parts)
    else None

(* Exceptions whose raise is conventional control flow, caught by the
   raiser's own caller by design. *)
let allowlisted_exceptions = [ "Exit" ]

(* Arena stores whose [type handle = int] aliases carry lifetime
   obligations. The aliases are transparent, but the Typedtree keeps
   abbreviations un-expanded in occurrence types, so the issuing store
   is recoverable from any handle-typed expression. *)
let handle_stores = [ "Itrie"; "Vrp_db"; "Bgp_db" ]

let rec handle_store_of_type depth (ty : Types.type_expr) =
  if depth > 3 then None
  else
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) -> (
      match List.rev (path_parts p) with
      | "handle" :: store :: _ when mem_string store handle_stores -> Some store
      | _ -> List.find_map (handle_store_of_type (depth + 1)) args)
    | Types.Ttuple tys -> List.find_map (handle_store_of_type (depth + 1)) tys
    | _ -> None

(* The store a value's handles come from, seen through one level of
   container/tuple nesting (a [handle ref], a [(int * handle) list]). *)
let handle_store ty = handle_store_of_type 0 ty

let pool_entrypoints = [ "parallel_map"; "parallel_iter"; "parallel_tasks" ]

let submission_of_parts parts =
  match List.rev (drop_stdlib parts) with
  | f :: "Pool" :: _ when mem_string f pool_entrypoints -> Some Pool_task
  | ("at" | "after") :: "Clock" :: _ -> Some Event_callback
  | "advance" :: "Wheel" :: _ -> Some Event_callback
  | _ -> None

(* Global-name resolution: exact id first, then the unit index keyed
   by the path's head component (module aliases like
   [module Vrp = Rpki.Vrp] leave "Vrp.exact" in the tree). Ambiguity
   resolves to nothing. *)
let resolve_global t parts =
  match parts with
  | [] | [ _ ] -> None
  | "Stdlib" :: _ -> None
  | head :: rest -> (
    let full = String.concat "." parts in
    if Hashtbl.mem t.nodes full then Some full
    else
      match Hashtbl.find_opt t.unit_index head with
      | None -> None
      | Some units ->
        let candidates =
          List.filter_map
            (fun u ->
              let id = u ^ "." ^ String.concat "." rest in
              if Hashtbl.mem t.nodes id then Some id else None)
            units
        in
        (match List.sort_uniq String.compare candidates with
        | [ id ] -> Some id
        | _ -> None))

(* --- per-binding analysis -------------------------------------------- *)

(* Pass 1 over a binding body: collect every Ident bound anywhere
   inside (patterns, for-indices, letop params). Stamps are globally
   unique, so a flat set needs no scoping discipline; any identifier
   outside the set is free — a module-level value or a variable
   captured from an enclosing definition. *)
let collect_locals expr =
  let locals : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let bind id = Hashtbl.replace locals (Ident.unique_name id) () in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
   fun it p ->
    (match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> bind id
    | Typedtree.Tpat_alias (_, id, _) -> bind id
    | _ -> ());
    default.pat it p
  in
  let expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_for (id, _, _, _, _, _) -> bind id
    | Typedtree.Texp_letop { param; _ } -> bind param
    | _ -> ());
    default.expr it e
  in
  let it = { default with pat; expr = expr_it } in
  it.expr it expr;
  locals

type walk_ctx = {
  graph : t;
  node : node;
  locals : (string, unit) Hashtbl.t;
  stamp_map : (string, string) Hashtbl.t;  (** unit-local Ident -> node id *)
  (* suppression depths: an expression-level waiver attribute prunes
     its kind from the whole subtree, mirroring the syntactic rules *)
  mutable alloc_off : int;
  mutable mut_off : int;
  mutable raise_off : int;
  mutable handle_off : int;
  mutable unsafe_off : int;
  mutable try_depth : int;  (** > 0 under a catch-all [try] body *)
  mutable pending_closures : (string * Typedtree.expression * sub_kind) list;
      (** submissions whose argument was a closure literal: processed
          after the current walk, becoming synthetic nodes *)
}

let is_local ctx id = Hashtbl.mem ctx.locals (Ident.unique_name id)

let loc_line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let add_fact ctx kind detail (loc : Location.t) =
  let off =
    match kind with
    | Alloc -> ctx.alloc_off > 0
    | Mutates -> ctx.mut_off > 0
    | Raises -> ctx.raise_off > 0
    | Handle_escape | Cross_store -> ctx.handle_off > 0
    | Unsafe_idx -> ctx.unsafe_off > 0
    (* markers, not findings: nothing suppresses them *)
    | Store_reset | Idx_guard -> false
  in
  if not off then begin
    let fact_line, fact_col = loc_line_col loc in
    ctx.node.facts <- { kind; detail; fact_line; fact_col } :: ctx.node.facts
  end

let add_call ctx id (loc : Location.t) =
  let call_line, _ = loc_line_col loc in
  ctx.node.calls <- { callee = id; call_line; guarded = ctx.try_depth > 0 } :: ctx.node.calls

(* The syntactic root of an lvalue-ish expression: [x], [x.f.g],
   [M.x.f]. Anything more complex resolves to nothing and is given the
   benefit of the doubt. *)
let rec expr_root (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e', _, _) -> expr_root e'
  | _ -> None

let nonlocal_root ctx e =
  match expr_root e with
  | Some (Path.Pident id) when not (is_local ctx id) -> Some (Ident.name id)
  | Some (Path.Pdot _ as p) -> Some (Path.name p)
  | Some _ | None -> None

let resolve_ident ctx (p : Path.t) (loc : Location.t) =
  match p with
  | Path.Pident id -> (
    match Hashtbl.find_opt ctx.stamp_map (Ident.unique_name id) with
    | Some node_id -> add_call ctx node_id loc
    | None -> ())
  | _ -> (
    let parts = path_parts p in
    (match raising_external parts with
    | Some what -> add_fact ctx Raises what loc
    | None -> ());
    (* a reference to a store's reset/clear marks this node as
       invalidating that store's handles (R11) *)
    (match List.rev (drop_stdlib parts) with
    | ("reset" | "clear") :: store :: _ when mem_string store handle_stores ->
      add_fact ctx Store_reset store loc
    | _ -> ());
    match resolve_global ctx.graph parts with
    | Some node_id -> add_call ctx node_id loc
    | None -> ())

(* Closure literals inside a submission argument: a bare [fun],
   or a list of thunks as passed to [parallel_tasks]. *)
let rec closure_literals (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> [ e ]
  | Texp_construct ({ txt = Lident "::"; _ }, _, [ hd; tl ]) ->
    closure_literals hd @ closure_literals tl
  | _ -> []

let catch_all_case (c : Typedtree.value Typedtree.case) =
  let rec catch_all (p : Typedtree.value Typedtree.general_pattern) =
    match p.pat_desc with
    | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> true
    | Typedtree.Tpat_alias (q, _, _) -> catch_all q
    | Typedtree.Tpat_or (a, b, _) -> catch_all a || catch_all b
    | _ -> false
  in
  c.c_guard = None && catch_all c.c_lhs

(* Pass 2: walk a node body recording facts, edges and submissions.
   [spine] marks the leading Texp_function chain of the binding — the
   function's parameter interface, not a closure allocated inside it. *)
let walk_body ctx ?(spine = true) top =
  let default = Tast_iterator.default_iterator in
  let with_suppressed (e : Typedtree.expression) f =
    let a = has_attr "lint.alloc_ok" e.exp_attributes in
    let m = has_attr "lint.domain_safe" e.exp_attributes in
    let r = has_attr "lint.raise_ok" e.exp_attributes in
    let h = has_attr "lint.handle_ok" e.exp_attributes in
    let u = has_justified_attr "lint.unsafe_idx_ok" e.exp_attributes in
    if a then ctx.alloc_off <- ctx.alloc_off + 1;
    if m then ctx.mut_off <- ctx.mut_off + 1;
    if r then ctx.raise_off <- ctx.raise_off + 1;
    if h then ctx.handle_off <- ctx.handle_off + 1;
    if u then ctx.unsafe_off <- ctx.unsafe_off + 1;
    Fun.protect
      ~finally:(fun () ->
        if a then ctx.alloc_off <- ctx.alloc_off - 1;
        if m then ctx.mut_off <- ctx.mut_off - 1;
        if r then ctx.raise_off <- ctx.raise_off - 1;
        if h then ctx.handle_off <- ctx.handle_off - 1;
        if u then ctx.unsafe_off <- ctx.unsafe_off - 1)
      f
  in
  let rec expr_it (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    with_suppressed e (fun () ->
        match e.exp_desc with
        | Texp_ident (p, _, _) -> resolve_ident ctx p e.exp_loc
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_loc = head_loc; _ }, args)
          -> (
          let parts = path_parts p in
          (* submissions: closures handed to the pool or the clock *)
          (match submission_of_parts parts with
          | Some kind ->
            let waiver =
              match kind with Pool_task -> "lint.domain_safe" | Event_callback -> "lint.raise_ok"
            in
            if not (has_attr waiver e.exp_attributes) then
              List.iter
                (fun (_, arg) ->
                  match arg with
                  | Some (a : Typedtree.expression) when not (has_attr waiver a.exp_attributes) -> (
                    match closure_literals a with
                    | _ :: _ as closures ->
                      List.iter
                        (fun c ->
                          ctx.pending_closures <- (ctx.node.id, c, kind) :: ctx.pending_closures)
                        closures
                    | [] -> (
                      match a.exp_desc with
                      | Texp_ident (fp, _, _) -> (
                        let target =
                          match fp with
                          | Path.Pident id ->
                            Hashtbl.find_opt ctx.stamp_map (Ident.unique_name id)
                          | _ -> resolve_global ctx.graph (path_parts fp)
                        in
                        match target with
                        | Some root ->
                          let line, _ = loc_line_col a.exp_loc in
                          add_submission ctx.graph ~kind ~root ~file:ctx.node.file ~line
                        | None -> ())
                      | _ -> ()))
                  | _ -> ())
                args
          | None -> ());
          (* ref / container mutation with a free target *)
          let first_arg =
            match args with (_, Some a) :: _ -> Some a | _ -> None
          in
          (match (drop_stdlib parts, first_arg) with
          | [ ":=" ], Some lhs -> (
            match nonlocal_root ctx lhs with
            | Some x -> add_fact ctx Mutates (Printf.sprintf "':=' on %s" x) head_loc
            | None -> ())
          | [ ("incr" | "decr") as f ], Some lhs -> (
            match nonlocal_root ctx lhs with
            | Some x -> add_fact ctx Mutates (Printf.sprintf "%s on %s" f x) head_loc
            | None -> ())
          | mp, Some first when is_container_mutation mp -> (
            match nonlocal_root ctx first with
            | Some x ->
              add_fact ctx Mutates
                (Printf.sprintf "%s on %s" (String.concat "." (drop_stdlib parts)) x)
                head_loc
            | None -> ())
          | [ "ref" ], Some _ -> add_fact ctx Alloc "ref cell" head_loc
          | _ -> ());
          (* arena handle provenance: escapes into long-lived storage
             (R11), cross-store flows (R12), unsafe indexing and the
             comparisons that guard it (R13) *)
          (match (drop_stdlib parts, args) with
          | [ ":=" ], _ :: (_, Some rhs) :: _ -> (
            match handle_store rhs.exp_type with
            | Some s ->
              add_fact ctx Handle_escape
                (Printf.sprintf "%s handle stored in a ref" s)
                head_loc
            | None -> ())
          | mp, _ :: stored when is_container_mutation mp ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some (a : Typedtree.expression) -> (
                  match handle_store a.exp_type with
                  | Some s ->
                    add_fact ctx Handle_escape
                      (Printf.sprintf "%s handle stored via %s" s
                         (String.concat "." (drop_stdlib parts)))
                      a.exp_loc
                  | None -> ())
                | None -> ())
              stored
          | _ -> ());
          (match List.rev (drop_stdlib parts) with
          | fn :: store :: _ when mem_string store handle_stores ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some (a : Typedtree.expression) -> (
                  match handle_store a.exp_type with
                  | Some s when not (String.equal s store) ->
                    add_fact ctx Cross_store
                      (Printf.sprintf "%s handle passed to %s.%s" s store fn)
                      a.exp_loc
                  | Some _ | None -> ())
                | None -> ())
              args
          | (("unsafe_get" | "unsafe_set") as f) :: (("Array" | "Bytes") as m) :: _ ->
            let idx_name =
              match args with
              | _ :: (_, Some idx) :: _ -> (
                match idx.Typedtree.exp_desc with
                | Texp_ident (Path.Pident id, _, _) -> Ident.name id
                | _ -> "<expr>")
              | _ -> "<expr>"
            in
            add_fact ctx Unsafe_idx (Printf.sprintf "%s.%s index %s" m f idx_name) head_loc
          | [ ("<" | "<=" | ">" | ">=" | "=" | "<>" | "==" | "!=") ] ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some { Typedtree.exp_desc = Texp_ident (Path.Pident id, _, _); _ } ->
                  add_fact ctx Idx_guard (Ident.name id) head_loc
                | _ -> ())
              args
          | _ -> ());
          (* raise with an allowlisted exception: prune the head so the
             ident case below stays quiet *)
          let allowlisted_raise =
            match (drop_stdlib parts, args) with
            | [ ("raise" | "raise_notrace") ], (_, Some arg) :: _ -> (
              match arg.exp_desc with
              | Texp_construct (_, cd, _) ->
                mem_string cd.cstr_name allowlisted_exceptions
              | _ -> false)
            | _ -> false
          in
          if allowlisted_raise then
            List.iter (fun (_, a) -> Option.iter (expr_it it) a) args
          else begin
            resolve_ident ctx p head_loc;
            List.iter (fun (_, a) -> Option.iter (expr_it it) a) args
          end)
        | Texp_try (body, cases) ->
          let guards = List.exists catch_all_case cases in
          if guards then ctx.try_depth <- ctx.try_depth + 1;
          expr_it it body;
          if guards then ctx.try_depth <- ctx.try_depth - 1;
          List.iter (fun c -> it.case it c) cases
        | Texp_assert (_, _) ->
          add_fact ctx Raises "assert" e.exp_loc;
          default.expr it e
        | Texp_setfield (obj, { txt; _ }, _, rhs) ->
          (match nonlocal_root ctx obj with
          | Some x ->
            add_fact ctx Mutates
              (Printf.sprintf "field %s of %s set"
                 (String.concat "." (Longident.flatten txt))
                 x)
              e.exp_loc
          | None -> ());
          (match handle_store rhs.exp_type with
          | Some s ->
            add_fact ctx Handle_escape
              (Printf.sprintf "%s handle stored in field %s" s
                 (String.concat "." (Longident.flatten txt)))
              e.exp_loc
          | None -> ());
          default.expr it e
        | Texp_function _ ->
          add_fact ctx Alloc "closure construction" e.exp_loc;
          (* a closure capturing a handle can outlive the frame that
             obtained it — an escape if a reset is reachable (R11).
             Captured = bound somewhere in this binding (ctx.locals)
             but not inside the closure itself. *)
          if ctx.handle_off = 0 then begin
            let inner = collect_locals e in
            let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
            let d = Tast_iterator.default_iterator in
            let cap_expr it2 (e2 : Typedtree.expression) =
              (match e2.exp_desc with
              | Typedtree.Texp_ident (Path.Pident id, _, _)
                when is_local ctx id
                     && (not (Hashtbl.mem inner (Ident.unique_name id)))
                     && not (Hashtbl.mem reported (Ident.unique_name id)) -> (
                match handle_store e2.exp_type with
                | Some s ->
                  Hashtbl.replace reported (Ident.unique_name id) ();
                  add_fact ctx Handle_escape
                    (Printf.sprintf "%s handle '%s' captured by a closure" s
                       (Ident.name id))
                    e2.exp_loc
                | None -> ())
              | _ -> ());
              d.expr it2 e2
            in
            let cap_it = { d with expr = cap_expr } in
            cap_it.expr cap_it e
          end;
          default.expr it e
        | Texp_tuple _ ->
          add_fact ctx Alloc "tuple construction" e.exp_loc;
          default.expr it e
        | Texp_record _ ->
          add_fact ctx Alloc "record construction" e.exp_loc;
          default.expr it e
        | Texp_array _ ->
          add_fact ctx Alloc "array literal" e.exp_loc;
          default.expr it e
        | Texp_lazy _ ->
          add_fact ctx Alloc "lazy thunk" e.exp_loc;
          default.expr it e
        | Texp_construct ({ txt = Lident "::"; _ }, _, _ :: _) ->
          add_fact ctx Alloc "list cons" e.exp_loc;
          default.expr it e
        | Texp_construct (_, cd, _ :: _) ->
          add_fact ctx Alloc
            (Printf.sprintf "%s constructor with payload" cd.cstr_name)
            e.exp_loc;
          default.expr it e
        | Texp_variant (_, Some _) ->
          add_fact ctx Alloc "variant with payload" e.exp_loc;
          default.expr it e
        | _ -> default.expr it e)
  in
  let it = { default with expr = expr_it } in
  (* Strip the leading parameter chain: its Texp_function layers are
     the function's interface. Everything below is body. *)
  let rec strip (e : Typedtree.expression) =
    if not (has_attr "lint.alloc_ok" e.exp_attributes
            || has_attr "lint.domain_safe" e.exp_attributes
            || has_attr "lint.raise_ok" e.exp_attributes
            || has_attr "lint.handle_ok" e.exp_attributes
            || has_justified_attr "lint.unsafe_idx_ok" e.exp_attributes)
       || e == top
    then
      match e.exp_desc with
      | Texp_function { cases; _ } ->
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            Option.iter (expr_it it) c.c_guard;
            strip c.c_rhs)
          cases
      | _ -> with_suppressed e (fun () -> expr_it it e)
    else with_suppressed e (fun () -> expr_it it e)
  in
  if spine then strip top else expr_it it top

(* --- structure walking ----------------------------------------------- *)

let pattern_var (p : Typedtree.value Typedtree.general_pattern) =
  let rec first (p : Typedtree.value Typedtree.general_pattern) =
    match p.pat_desc with
    | Typedtree.Tpat_var (id, name) -> Some (id, name.txt)
    | Typedtree.Tpat_alias (q, id, name) -> (
      match first q with Some v -> Some v | None -> Some (id, name.txt))
    | _ -> None
  in
  first p

let rec pattern_all_vars (p : Typedtree.value Typedtree.general_pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ id ]
  | Typedtree.Tpat_alias (q, id, _) -> id :: pattern_all_vars q
  | Typedtree.Tpat_tuple ps | Typedtree.Tpat_array ps ->
    List.concat_map pattern_all_vars ps
  | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pattern_all_vars ps
  | Typedtree.Tpat_variant (_, Some q, _) -> pattern_all_vars q
  | Typedtree.Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, q) -> pattern_all_vars q) fields
  | Typedtree.Tpat_or (a, b, _) -> pattern_all_vars a @ pattern_all_vars b
  | Typedtree.Tpat_lazy q -> pattern_all_vars q
  | _ -> []

let build (loader : Cmt_loader.t) =
  let t = create () in
  (* every module-level binding across every unit is declared before
     any body is analyzed, so forward references (module A using
     module B, whatever the load order) resolve *)
  let bodies :
      (node * Typedtree.expression * (string, string) Hashtbl.t) list ref =
    ref []
  in
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      (match String.rindex_opt u.unit_id '.' with
      | Some i ->
        let last = String.sub u.unit_id (i + 1) (String.length u.unit_id - i - 1) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.unit_index last) in
        Hashtbl.replace t.unit_index last (prev @ [ u.unit_id ])
      | None ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt t.unit_index u.unit_id) in
        Hashtbl.replace t.unit_index u.unit_id (prev @ [ u.unit_id ]));
      let stamp_map : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let rec walk_structure prefix (str : Typedtree.structure) =
        List.iter
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  let line, _ = loc_line_col vb.vb_loc in
                  let id =
                    match pattern_var vb.vb_pat with
                    | Some (_, name) -> prefix ^ "." ^ name
                    | None -> Printf.sprintf "%s.<toplevel:%d>" prefix line
                  in
                  List.iter
                    (fun vid -> Hashtbl.replace stamp_map (Ident.unique_name vid) id)
                    (pattern_all_vars vb.vb_pat);
                  let n =
                    add_node t ~id ~file:u.source ~line
                      ~attrs:(binding_attr_names vb.vb_attributes) ()
                  in
                  bodies := (n, vb.vb_expr, stamp_map) :: !bodies)
                vbs
            | Tstr_module mb -> walk_module prefix mb
            | Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
            | Tstr_eval (e, attrs) ->
              let line, _ = loc_line_col item.str_loc in
              let id = Printf.sprintf "%s.<toplevel:%d>" prefix line in
              let n =
                add_node t ~id ~file:u.source ~line ~attrs:(binding_attr_names attrs) ()
              in
              bodies := (n, e, stamp_map) :: !bodies
            | _ -> ())
          str.str_items
      and walk_module prefix (mb : Typedtree.module_binding) =
        let name =
          match mb.mb_name.txt with Some n -> n | None -> "_"
        in
        let rec descend (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_structure str -> walk_structure (prefix ^ "." ^ name) str
          | Tmod_constraint (me', _, _, _) -> descend me'
          | Tmod_functor (_, me') -> descend me'
          | _ -> ()
        in
        descend mb.mb_expr
      in
      walk_structure u.unit_id u.structure)
    loader.units;
  (* analyze bodies (deterministic order), then drain closure
     submissions — closures can nest further submissions *)
  let pending = ref [] in
  let analyze (n : node) expr stamp_map ~spine =
    let ctx =
      { graph = t;
        node = n;
        locals = collect_locals expr;
        stamp_map;
        alloc_off = 0;
        mut_off = 0;
        raise_off = 0;
        handle_off = 0;
        unsafe_off = 0;
        try_depth = 0;
        pending_closures = [] }
    in
    walk_body ctx ~spine expr;
    n.calls <- List.rev n.calls;
    n.facts <- List.rev n.facts;
    pending := !pending @ List.rev ctx.pending_closures;
    stamp_map
  in
  List.iter (fun (n, e, sm) -> ignore (analyze n e sm ~spine:true)) (List.rev !bodies);
  let closure_counter : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rec drain () =
    match !pending with
    | [] -> ()
    | (owner_id, closure, kind) :: rest ->
      pending := rest;
      (match find t owner_id with
      | None -> ()
      | Some owner ->
        let line, _ = loc_line_col closure.Typedtree.exp_loc in
        let id =
          let base = Printf.sprintf "%s.<fun:%d>" owner_id line in
          match Hashtbl.find_opt closure_counter base with
          | None ->
            Hashtbl.replace closure_counter base 1;
            base
          | Some k ->
            Hashtbl.replace closure_counter base (k + 1);
            Printf.sprintf "%s#%d" base k
        in
        let n = add_node t ~id ~file:owner.file ~line () in
        (* the closure keeps the owner's unit-level stamp map: it can
           refer to any module-level binding of its unit *)
        let sm =
          match List.find_opt (fun (o, _, _) -> String.equal o.id owner_id)
                  (List.rev !bodies)
          with
          | Some (_, _, sm) -> sm
          | None -> Hashtbl.create 1
        in
        ignore (analyze n closure sm ~spine:true);
        add_submission t ~kind ~root:id ~file:owner.file ~line);
      drain ()
  in
  drain ();
  t.submissions <- List.rev t.submissions;
  t
