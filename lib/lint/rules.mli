(** The repo-specific lint rule catalogue (see DESIGN.md §9).

    All checkers are syntactic — they walk the {!Parsetree} with
    [Ast_iterator], with no typing environment — and each offers an
    attribute escape hatch for sites the approximation gets wrong:
    [[@lint.poly_ok]] (R1), [[@lint.unsafe_ok]] (R2),
    [[@lint.domain_safe]] (R3), [[@lint.stdout_ok]] (R5),
    [[@lint.encode_ok]] (R6). *)

type file_context = {
  path : string;  (** '/'-separated path relative to the lint root *)
  add : Finding.t -> unit;
}

type tree_context = {
  tree_files : string list;  (** every scanned file, relative paths *)
  tree_add : Finding.t -> unit;
}

type kind =
  | File_rule of (file_context -> Parsetree.structure -> unit)
      (** runs once per parsed [.ml] file *)
  | Tree_rule of (tree_context -> unit)  (** runs once per lint invocation *)

type t = {
  id : string;  (** "R1" .. "R6" *)
  name : string;  (** short slug, e.g. "poly-compare" *)
  severity : Finding.severity;
  doc : string;  (** one-paragraph rationale shown by [--list-rules] *)
  kind : kind;
}

val all : t list
(** The registry, in rule-id order. *)

val find : string list -> t list
(** Rules whose id is in the list (unknown ids are ignored). *)

val ids : unit -> string list
