(** The repo-specific lint rule catalogue (see DESIGN.md §9), in two
    phases.

    R1–R7 are syntactic — they walk the {!Parsetree} with
    [Ast_iterator], with no typing environment. R8–R13 are typed and
    interprocedural: they consume the {!Callgraph} built from [.cmt]
    artifacts and attach a witness call chain to every finding.
    R11–R13 are the static half of the arena handle-safety contract
    (DESIGN.md §13): handle escape across reset, cross-store handle
    confusion, and unchecked unsafe indexing.

    Each rule offers an attribute escape hatch for sites its
    approximation gets wrong: [[@lint.poly_ok]] (R1),
    [[@lint.unsafe_ok]] (R2), [[@lint.domain_safe]] (R3, R9),
    [[@lint.stdout_ok]] (R5), [[@lint.encode_ok]] (R6),
    [[@lint.alloc_ok]] (R7, R8), [[@lint.raise_ok]] (R10),
    [[@lint.handle_ok]] (R11, R12), and — with a mandatory
    justification payload — [[@@lint.unsafe_idx_ok "why"]] (R13). For
    the typed rules the waiver is honored on {e any} binding along the
    call chain, killing everything beyond it. *)

type file_context = {
  path : string;  (** '/'-separated path relative to the lint root *)
  add : Finding.t -> unit;
}

type tree_context = {
  tree_files : string list;  (** every scanned file, relative paths *)
  tree_add : Finding.t -> unit;
}

type typed_context = {
  typed_files : string list;
      (** scanned files — typed roots are scoped to these, so cmts of
          fixture or ignored code never seed findings *)
  graph : Callgraph.t;
  typed_add : Finding.t -> unit;
}

type kind =
  | File_rule of (file_context -> Parsetree.structure -> unit)
      (** runs once per parsed [.ml] file *)
  | Tree_rule of (tree_context -> unit)  (** runs once per lint invocation *)
  | Typed_rule of (typed_context -> unit)
      (** runs once per lint invocation, only when the typed phase is
          enabled and [.cmt] artifacts were loadable *)

type t = {
  id : string;  (** "R1" .. "R10" *)
  name : string;  (** short slug, e.g. "poly-compare" *)
  severity : Finding.severity;
  doc : string;  (** one-paragraph rationale shown by [--list-rules] *)
  kind : kind;
}

val all : t list
(** The registry, in rule-id order. *)

val find : string list -> t list
(** Rules whose id is in the list (unknown ids are ignored). *)

val ids : unit -> string list
