(** Lint orchestration: discover sources, parse, run the rule registry
    (syntactic phase always; typed phase over [.cmt] artifacts on
    request), baseline-filter, render. *)

val schema : string
(** ["rpki-maxlen/lint/v2"] — the JSON report schema tag. v2 adds the
    environment header ([ocaml_version], [word_size]), the typed-phase
    fields ([typed_units], optional [typed_warning]) and per-finding
    [witness] chains. *)

val discover : root:string -> string list -> string list
(** Expand files/directories (relative to [root]) into a sorted list of
    root-relative [.ml]/[.mli] paths. Directory walks skip [_build],
    [.git], [lint_fixtures], and any directory containing a
    [.lint-ignore] marker file. *)

type report = {
  root : string;
  files_scanned : int;
  rules_run : string list;
      (** rules that actually executed: typed rules drop out when the
          typed phase is off or degraded *)
  findings : Finding.t list;  (** sorted by file/line/col/rule *)
  typed_units : int;  (** compilation units the typed phase analyzed; 0 if it did not run *)
  typed_warning : string option;
      (** set when the typed phase was requested but degraded
          (no/unreadable [.cmt] artifacts) *)
}

val run :
  ?rules:Rules.t list -> ?typed:bool -> ?cmt_dir:string -> root:string -> string list -> report
(** Lint the given paths. Unparseable [.ml] files yield a single
    ["parse"]-rule error finding rather than aborting the run.

    With [~typed:true], [.cmt] artifacts are loaded from [cmt_dir]
    (default [root/_build/default]), the call graph is built once, and
    the typed rules run with their roots scoped to the discovered file
    set. A missing or empty build directory degrades to
    [typed_warning] — never a failure. *)

val load_baseline : string -> string list
(** Fingerprints recorded in a previous JSON report (line-oriented
    scan; no JSON parser needed since the emitter writes one finding
    per line). Accepts both v1 and v2 reports — the per-line finding
    format is unchanged, v2 only adds header fields and the nested
    witness array. *)

val apply_baseline : baseline:string list -> report -> report
(** Drop findings whose fingerprint appears in the baseline. *)

val to_text : report -> string
val to_json : report -> string

val to_sarif : report -> string
(** SARIF 2.1.0, the minimal profile code-scanning UIs ingest: one
    run, the executed rules under [tool.driver.rules], one result per
    finding (rule id, level, message, physical location with 1-based
    [startColumn]) and the witness chain as [relatedLocations]. The v2
    JSON report remains the baseline format — SARIF carries no
    fingerprint header and [load_baseline] does not read it. *)

val has_errors : report -> bool
(** True when any error-severity finding remains — the CLI's exit
    criterion. *)
