(** Lint orchestration: discover sources, parse, run the rule registry,
    baseline-filter, render. *)

val schema : string
(** ["rpki-maxlen/lint/v1"] — the JSON report schema tag. *)

val discover : root:string -> string list -> string list
(** Expand files/directories (relative to [root]) into a sorted list of
    root-relative [.ml]/[.mli] paths. Directory walks skip [_build],
    [.git] and [lint_fixtures]. *)

type report = {
  root : string;
  files_scanned : int;
  rules_run : string list;
  findings : Finding.t list;  (** sorted by file/line/col/rule *)
}

val run : ?rules:Rules.t list -> root:string -> string list -> report
(** Lint the given paths. Unparseable [.ml] files yield a single
    ["parse"]-rule error finding rather than aborting the run. *)

val load_baseline : string -> string list
(** Fingerprints recorded in a previous JSON report (line-oriented
    scan; no JSON parser needed since the emitter writes one finding
    per line). *)

val apply_baseline : baseline:string list -> report -> report
(** Drop findings whose fingerprint appears in the baseline. *)

val to_text : report -> string
val to_json : report -> string

val has_errors : report -> bool
(** True when any error-severity finding remains — the CLI's exit
    criterion. *)
