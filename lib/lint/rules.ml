(* The repo-specific rule catalogue, in two phases. R1–R7 are
   syntactic: they walk the parsetree with [Ast_iterator] — no typing
   environment — so each documents the approximation it makes and
   offers an attribute escape hatch for the sites the approximation
   gets wrong. R8–R10 are typed and interprocedural: they consume the
   {!Callgraph} built from [.cmt] artifacts and report findings with a
   witness call chain. See DESIGN.md §9 for the rationale per rule. *)

open Parsetree

(* --- contexts ------------------------------------------------------ *)

type file_context = {
  path : string;  (** '/'-separated path relative to the lint root *)
  add : Finding.t -> unit;
}

type tree_context = {
  tree_files : string list;  (** every scanned file, relative paths *)
  tree_add : Finding.t -> unit;
}

type typed_context = {
  typed_files : string list;  (** scanned files — typed roots are scoped to these *)
  graph : Callgraph.t;
  typed_add : Finding.t -> unit;
}

type kind =
  | File_rule of (file_context -> structure -> unit)
  | Tree_rule of (tree_context -> unit)
  | Typed_rule of (typed_context -> unit)

type t = {
  id : string;
  name : string;
  severity : Finding.severity;
  doc : string;
  kind : kind;
}

(* --- shared helpers ------------------------------------------------ *)

let finding ctx ~rule ~severity (loc : Location.t) msg =
  let p = loc.loc_start in
  ctx.add
    (Finding.make ~rule ~severity ~file:ctx.path ~line:p.pos_lnum
       ~col:(p.pos_cnum - p.pos_bol) msg)

let flatten_ident (lid : Longident.t) =
  match Longident.flatten lid with
  | "Stdlib" :: rest -> rest
  | l -> l
  | exception _ -> []

let has_attr name (attrs : attributes) =
  List.exists (fun (a : attribute) -> String.equal a.attr_name.txt name) attrs

let under_prefix prefix path =
  let pl = String.length prefix in
  String.length path >= pl && String.equal (String.sub path 0 pl) prefix

let core_libs = [ "lib/core/"; "lib/rpki/"; "lib/netaddr/"; "lib/ptrie/"; "lib/arena/" ]
let in_core_libs path = List.exists (fun p -> under_prefix p path) core_libs
let is_ml path = Filename.check_suffix path ".ml"

(* --- a scope-aware expression walker ------------------------------- *)

(* Builds an [Ast_iterator] that threads a {!Scope.t} through every
   binding form ([let]/[let rec], function parameters, match cases,
   [for] indices, module-level [let]s — unwound at the end of each
   submodule), calling [visit] on each expression before recursing.
   [visit] returns [false] to prune the subtree (suppression
   attributes); [visit_binding] likewise gates whole value bindings. *)
let scoped_iterator ~scope ~visit ?(visit_binding = fun _ -> true) () =
  let default = Ast_iterator.default_iterator in
  let iter_cases (it : Ast_iterator.iterator) cases =
    List.iter
      (fun (c : case) ->
        Scope.with_names scope (Scope.pattern_vars c.pc_lhs) (fun () ->
            Option.iter (it.expr it) c.pc_guard;
            it.expr it c.pc_rhs))
      cases
  in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    if visit e then
      match e.pexp_desc with
      | Pexp_let (Nonrecursive, vbs, body) ->
        List.iter (fun vb -> if visit_binding vb then it.expr it vb.pvb_expr) vbs;
        Scope.with_names scope (Scope.binding_vars vbs) (fun () -> it.expr it body)
      | Pexp_let (Recursive, vbs, body) ->
        Scope.with_names scope (Scope.binding_vars vbs) (fun () ->
            List.iter (fun vb -> if visit_binding vb then it.expr it vb.pvb_expr) vbs;
            it.expr it body)
      | Pexp_fun (_, default_arg, pat, body) ->
        Option.iter (it.expr it) default_arg;
        Scope.with_names scope (Scope.pattern_vars pat) (fun () -> it.expr it body)
      | Pexp_function cases -> iter_cases it cases
      | Pexp_match (scrut, cases) ->
        it.expr it scrut;
        iter_cases it cases
      | Pexp_try (body, cases) ->
        it.expr it body;
        iter_cases it cases
      | Pexp_for (pat, lo, hi, _, body) ->
        it.expr it lo;
        it.expr it hi;
        Scope.with_names scope (Scope.pattern_vars pat) (fun () -> it.expr it body)
      | _ -> default.expr it e
  in
  let structure (it : Ast_iterator.iterator) items =
    let saved = Scope.snapshot scope in
    List.iter
      (fun (item : structure_item) ->
        (* [let rec] at module level: the names are visible in their own
           right-hand sides, so push before visiting. *)
        (match item.pstr_desc with
        | Pstr_value (Recursive, vbs) -> Scope.push scope (Scope.binding_vars vbs)
        | _ -> ());
        it.structure_item it item;
        match item.pstr_desc with
        | Pstr_value (Nonrecursive, vbs) -> Scope.push scope (Scope.binding_vars vbs)
        | _ -> ())
      items;
    Scope.restore scope saved
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    if visit_binding vb then default.value_binding it vb
  in
  { default with expr; structure; value_binding }

(* --- R1: no polymorphic compare/equality/hash ----------------------- *)

(* Modules whose main type is abstract and carries dedicated
   compare/equal/hash functions; structural equality on their values is
   either wrong today (signed Int64 ordering inside [Ipv6.t]) or one
   representation change away from wrong. *)
let tracked_modules = [ "Pfx"; "Ipv4"; "Ipv6"; "Vrp"; "Asnum"; "Roa"; "Route"; "Ptrie" ]

(* Functions of those modules that return plain scalars (int / string /
   bool / simple enums), for which polymorphic equality is fine — keeps
   the [=] heuristic quiet on [Pfx.length p = 24] and friends. *)
let scalar_returning =
  [ "length"; "to_int"; "to_string"; "bits"; "addr_bits"; "afi"; "is_zero"; "hash";
    "compare"; "equal"; "common_length"; "max_asn"; "cardinal"; "count"; "mem";
    "subset"; "strict_subset"; "is_left_child"; "bit" ]

(* Record fields of tracked modules holding abstract values (so
   [v.Vrp.prefix = w.Vrp.prefix] is flagged but [v.Vrp.max_len = 24] is
   not). *)
let abstract_fields = [ "prefix"; "net" ]

let mem_string s l = List.exists (String.equal s) l

(* Does this operand of [=]/[<>] syntactically produce an abstract value
   of a tracked module? *)
let tracked_abstract (e : expression) =
  (* The qualifier may nest ([Ipv6.Prefix.of_string]): a path counts as
     tracked when any module segment is a tracked module. *)
  let tracked_qualifier ms = List.exists (fun m -> mem_string m tracked_modules) ms in
  let from_path parts =
    match List.rev parts with
    | f :: (_ :: _ as ms) -> tracked_qualifier ms && not (mem_string f scalar_returning)
    | _ -> false
  in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> from_path (flatten_ident txt)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> from_path (flatten_ident txt)
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (flatten_ident txt) with
    | f :: (_ :: _ as ms) -> tracked_qualifier ms && mem_string f abstract_fields
    | [ f ] -> mem_string f abstract_fields
    | [] -> false)
  | Pexp_construct ({ txt; _ }, Some _) -> (
    match List.rev (flatten_ident txt) with
    | _ :: (_ :: _ as ms) -> tracked_qualifier ms
    | _ -> false)
  | _ -> false

let r1_check ctx st =
  let scope = Scope.create () in
  let rule = "R1" and severity = Finding.Error in
  let visit (e : expression) =
    if has_attr "lint.poly_ok" e.pexp_attributes then false
    else begin
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match flatten_ident txt with
        | [ "compare" ] when not (Scope.is_bound scope "compare") ->
          finding ctx ~rule ~severity loc
            "polymorphic compare: use the module-specific compare (Pfx.compare, \
             Vrp.compare, Int.compare, ...) or annotate [@lint.poly_ok]"
        | [ "compare" ] -> ()
        | [ "Hashtbl"; "hash" ] ->
          finding ctx ~rule ~severity loc
            "polymorphic Hashtbl.hash: hash the concrete representation directly (see \
             Pfx.hash) or annotate [@lint.poly_ok]"
        | [ "List"; ("mem" | "memq") ] ->
          finding ctx ~rule ~severity loc
            "polymorphic List.mem: use List.exists with an explicit equality \
             (String.equal, Asnum.equal, ...) or annotate [@lint.poly_ok]"
        | _ -> ())
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, [ (_, a); (_, b) ]) -> (
        match flatten_ident txt with
        | [ ("=" | "<>" | "==" | "!=") as op ] when tracked_abstract a || tracked_abstract b ->
          finding ctx ~rule ~severity loc
            (Printf.sprintf
               "polymorphic (%s) on an abstract value: use the module's equal/compare \
                or annotate [@lint.poly_ok]"
               op)
        | _ -> ())
      | _ -> ());
      true
    end
  in
  let visit_binding (vb : value_binding) = not (has_attr "lint.poly_ok" vb.pvb_attributes) in
  let it = scoped_iterator ~scope ~visit ~visit_binding () in
  it.structure it st

(* --- R2: no unsafe / partial stdlib in the core libraries ----------- *)

let r2_check ctx st =
  let rule = "R2" and severity = Finding.Error in
  let default = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    if has_attr "lint.unsafe_ok" e.pexp_attributes then ()
    else begin
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match flatten_ident txt with
        | (("Obj" | "Marshal" | "Str") as root) :: _ ->
          finding ctx ~rule ~severity loc
            (Printf.sprintf
               "%s.* is banned in the core libraries (lib/core, lib/rpki, lib/netaddr, \
                lib/ptrie, lib/arena)"
               root)
        | [ "List"; ("hd" | "nth" | "tl") ] | [ "Option"; "get" ] ->
          finding ctx ~rule ~severity loc
            "partial stdlib function in a core library: pattern-match explicitly, or \
             use Option.value / annotate [@lint.unsafe_ok]"
        | _ -> ())
      | _ -> ());
      default.expr it e
    end
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    if not (has_attr "lint.unsafe_ok" vb.pvb_attributes) then default.value_binding it vb
  in
  let it = { default with expr; value_binding } in
  it.structure it st

(* --- R3: no mutable capture in Pool closures ------------------------ *)

let pool_entrypoints = [ "parallel_map"; "parallel_iter"; "parallel_tasks" ]

let is_pool_call parts =
  match List.rev parts with
  | f :: rest ->
    mem_string f pool_entrypoints
    && (match rest with [] -> true | m :: _ -> String.equal m "Pool")
  | [] -> false

(* Container-mutating functions: flagged when their first argument is a
   variable captured from outside the closure. *)
let mutator_modules = [ "Hashtbl"; "Buffer"; "Stack"; "Queue"; "Tbl"; "Array"; "Bytes" ]

let mutator_fns =
  [ "set"; "add"; "replace"; "remove"; "reset"; "clear"; "truncate"; "push"; "pop";
    "add_string"; "add_char"; "add_bytes"; "add_buffer"; "add_substring"; "fill";
    "blit"; "unsafe_set" ]

let is_container_mutation parts =
  match List.rev parts with
  | f :: m :: _ -> mem_string f mutator_fns && mem_string m mutator_modules
  | _ -> false

(* Walk one closure literal: anything bound inside (parameters, local
   lets, case patterns) is fine to mutate; mutation reaching a free
   variable is a captured-state write and gets flagged. *)
let check_closure ctx (closure : expression) =
  let rule = "R3" and severity = Finding.Error in
  let scope = Scope.create () in
  let free (e : expression) =
    match e.pexp_desc with
    | Pexp_ident { txt = Lident x; _ } -> if Scope.is_bound scope x then None else Some x
    | _ -> None
  in
  let report loc what x =
    finding ctx ~rule ~severity loc
      (Printf.sprintf
         "closure passed to Pool.parallel_* %s captured '%s'; pool tasks must be pure — \
          restructure, or annotate [@lint.domain_safe] if the writes are provably \
          disjoint"
         what x)
  in
  let visit (e : expression) =
    if has_attr "lint.domain_safe" e.pexp_attributes then false
    else begin
      (match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        let parts = flatten_ident txt in
        match (parts, args) with
        | [ ":=" ], (_, lhs) :: _ -> (
          match free lhs with Some x -> report loc "assigns to" x | None -> ())
        | [ ("incr" | "decr") ], (_, lhs) :: _ -> (
          match free lhs with Some x -> report loc "mutates" x | None -> ())
        | _, (_, first) :: _ when is_container_mutation parts -> (
          match free first with Some x -> report loc "mutates container" x | None -> ())
        | _ -> ())
      | Pexp_setfield (lhs, _, _) -> (
        match free lhs with
        | Some x -> report e.pexp_loc "sets a field of" x
        | None -> ())
      | _ -> ());
      true
    end
  in
  let it = scoped_iterator ~scope ~visit () in
  it.expr it closure

let rec closure_literals (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> [ e ]
  | Pexp_construct ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    ->
    closure_literals hd @ closure_literals tl
  | _ -> []

let r3_check ctx st =
  let default = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    (if not (has_attr "lint.domain_safe" e.pexp_attributes) then
       match e.pexp_desc with
       | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
         when is_pool_call (flatten_ident txt) ->
         List.iter
           (fun (_, arg) ->
             if not (has_attr "lint.domain_safe" arg.pexp_attributes) then
               List.iter (check_closure ctx) (closure_literals arg))
           args
       | _ -> ());
    default.expr it e
  in
  let it = { default with expr } in
  it.structure it st

(* --- R4: every lib/**.ml has a matching .mli ------------------------ *)

let r4_check tctx =
  let have_mli =
    List.filter (fun f -> Filename.check_suffix f ".mli") tctx.tree_files
  in
  List.iter
    (fun f ->
      if is_ml f && under_prefix "lib/" f then
        let want = f ^ "i" in
        if not (mem_string want have_mli) then
          tctx.tree_add
            (Finding.make ~rule:"R4" ~severity:Finding.Error ~file:f ~line:1 ~col:0
               "library module has no .mli: every lib/**.ml must declare its interface"))
    tctx.tree_files

(* --- R5: no stdout printing from library code ----------------------- *)

let stdout_idents =
  [ [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ]; [ "print_char" ];
    [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ]; [ "Printf"; "printf" ];
    [ "Format"; "printf" ]; [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
    [ "Format"; "print_flush" ]; [ "Format"; "open_box" ] ]

let r5_check ctx st =
  let rule = "R5" and severity = Finding.Error in
  let default = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    if has_attr "lint.stdout_ok" e.pexp_attributes then ()
    else begin
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
        let parts = flatten_ident txt in
        if List.exists (fun banned -> List.equal String.equal banned parts) stdout_idents
        then
          finding ctx ~rule ~severity loc
            "stdout printing from lib/: return data or take a Format formatter; \
             printing belongs in bin/ and bench/ (or annotate [@lint.stdout_ok])"
      | _ -> ());
      default.expr it e
    end
  in
  let it = { default with expr } in
  it.structure it st

(* --- R6: Pdu.encode only inside the encode-once core ---------------- *)

(* The fan-out refactor's whole point is that PDU serialization happens
   once per payload, in [Cache_server]'s segment cache — a stray
   [Pdu.encode] in a serving loop silently reintroduces the
   O(sessions × PDUs) cost. The check is syntactic: any ident path
   ending in [Pdu.encode] (module aliases included: [Rtr.Pdu.encode])
   outside the two core files and test code. Genuine one-offs — an
   Error Report echoing the offending PDU, a micro-bench measuring the
   encoder itself — carry [@lint.encode_ok]. *)
let r6_allowed = [ "lib/rtr/pdu.ml"; "lib/rtr/cache_server.ml" ]
let r6_exempt path = mem_string path r6_allowed || under_prefix "test/" path

let r6_check ctx st =
  let rule = "R6" and severity = Finding.Error in
  let default = Ast_iterator.default_iterator in
  let expr (it : Ast_iterator.iterator) (e : expression) =
    if has_attr "lint.encode_ok" e.pexp_attributes then ()
    else begin
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match List.rev (flatten_ident txt) with
        | "encode" :: "Pdu" :: _ ->
          finding ctx ~rule ~severity loc
            "per-PDU Pdu.encode outside the encode-once core: fan out the shared \
             segments from Cache_server.handle_wire (or batch with Pdu.encode_all); \
             annotate a genuine one-off [@lint.encode_ok]"
        | _ -> ())
      | _ -> ());
      default.expr it e
    end
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    if not (has_attr "lint.encode_ok" vb.pvb_attributes) then default.value_binding it vb
  in
  let it = { default with expr; value_binding } in
  it.structure it st

(* --- R7: no allocation sites in [@hot] functions -------------------- *)

(* The flat-arena data plane promises zero per-query allocation; hot
   functions advertise that with [@@hot], and this rule keeps the
   promise syntactically: inside a hot binding's body, any expression
   that the compiler must box — tuple, record, closure, [ref] cell,
   list cons or other payload-carrying constructor, array or lazy —
   is flagged. The check sees only syntax: calls that allocate
   internally (Array.make, sprintf, ...) pass unseen, and constant
   constructors / immediate ints are correctly free. Sites that are
   deliberate (e.g. building the result list of a view function) take
   [@lint.alloc_ok] on the expression or the binding. *)

let r7_check ctx st =
  let rule = "R7" and severity = Finding.Error in
  let report loc what =
    finding ctx ~rule ~severity loc
      (Printf.sprintf
         "[@hot] function allocates (%s): keep the hot path allocation-free — hoist or \
          restructure, or annotate [@lint.alloc_ok]"
         what)
  in
  let default = Ast_iterator.default_iterator in
  (* Walks a hot body; every syntactic allocation site is a finding. *)
  let rec body_it =
    let expr (it : Ast_iterator.iterator) (e : expression) =
      if has_attr "lint.alloc_ok" e.pexp_attributes then ()
      else
        match e.pexp_desc with
        | Pexp_construct ({ txt = Lident "::"; _ }, Some payload) ->
          report e.pexp_loc "list cons";
          (* the cons cell's (head, tail) pair is part of this site, not
             a second allocation: recurse into the elements directly *)
          (match payload.pexp_desc with
          | Pexp_tuple els -> List.iter (it.expr it) els
          | _ -> it.expr it payload)
        | _ ->
          (match e.pexp_desc with
          | Pexp_tuple _ -> report e.pexp_loc "tuple construction"
          | Pexp_record _ -> report e.pexp_loc "record construction"
          | Pexp_array _ -> report e.pexp_loc "array literal"
          | Pexp_fun _ | Pexp_function _ -> report e.pexp_loc "closure construction"
          | Pexp_lazy _ -> report e.pexp_loc "lazy thunk"
          | Pexp_construct ({ txt; _ }, Some _) ->
            report e.pexp_loc
              (Printf.sprintf "%s constructor with payload"
                 (String.concat "." (flatten_ident txt)))
          | Pexp_variant (_, Some _) -> report e.pexp_loc "variant with payload"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "ref"; loc }; _ }, _ :: _)
            ->
            report loc "ref cell"
          | _ -> ());
          default.expr it e
    in
    let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
      if not (has_attr "lint.alloc_ok" vb.pvb_attributes) then default.value_binding it vb
    in
    { default with expr; value_binding }
  (* The leading parameter chain is the function's interface, not an
     allocation inside it. *)
  and check_hot_body (e : expression) =
    match e.pexp_desc with
    | Pexp_fun (_, default_arg, _, body) ->
      Option.iter (body_it.expr body_it) default_arg;
      check_hot_body body
    | Pexp_newtype (_, body) -> check_hot_body body
    | Pexp_constraint (body, _) -> check_hot_body body
    | _ -> body_it.expr body_it e
  in
  let value_binding (it : Ast_iterator.iterator) (vb : value_binding) =
    if has_attr "hot" vb.pvb_attributes then begin
      if not (has_attr "lint.alloc_ok" vb.pvb_attributes) then check_hot_body vb.pvb_expr
    end
    else default.value_binding it vb
  in
  let it = { default with value_binding } in
  it.structure it st

(* --- the typed phase (R8–R10) --------------------------------------- *)

(* Shared plumbing: scope roots to the scanned file set (the fixture
   corpus and anything under a .lint-ignore directory produce cmts
   too, when built, but must not seed findings), walk the reachable
   set, and dedupe findings by site — the first root to reach a site
   owns the finding, and roots are visited in sorted id order, so the
   winner is deterministic. *)

let witness_of_chain graph chain =
  List.filter_map
    (fun id ->
      match Callgraph.find graph id with
      | Some (n : Callgraph.node) ->
        Some { Finding.step_fn = n.id; step_file = n.file; step_line = n.line }
      | None -> None)
    chain

let typed_findings tctx ~rule ~fact_kind ~waiver ~follow_guarded ~skip_node ~message roots =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (root_id, origin) ->
      List.iter
        (fun ((n : Callgraph.node), chain) ->
          if not (skip_node ~root_id n) then
            List.iter
              (fun (f : Callgraph.fact) ->
                if f.kind = fact_kind then begin
                  let key = Printf.sprintf "%s|%d|%d" n.file f.fact_line f.fact_col in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    tctx.typed_add
                      (Finding.make
                         ~witness:(witness_of_chain tctx.graph chain)
                         ~rule ~severity:Finding.Error ~file:n.file ~line:f.fact_line
                         ~col:f.fact_col
                         (message ~origin ~detail:f.detail))
                  end
                end)
              n.facts)
        (Callgraph.reach tctx.graph ~waiver ~follow_guarded root_id))
    roots

let in_typed_scope tctx file = mem_string file tctx.typed_files

(* R8: the transitive closure of every [@@hot] body is allocation-free.
   The root's own body is R7's (syntactic) job — and so is any hot
   callee's, being a root itself — so R8 reports only on reachable
   non-hot helpers. *)
let r8_check tctx =
  let roots =
    List.filter_map
      (fun (n : Callgraph.node) ->
        if mem_string "hot" n.attrs && in_typed_scope tctx n.file then Some (n.id, n.id)
        else None)
      (Callgraph.nodes tctx.graph)
  in
  typed_findings tctx ~rule:"R8" ~fact_kind:Callgraph.Alloc ~waiver:"lint.alloc_ok"
    ~follow_guarded:true
    ~skip_node:(fun ~root_id (n : Callgraph.node) ->
      String.equal n.id root_id || mem_string "hot" n.attrs)
    ~message:(fun ~origin ~detail ->
      Printf.sprintf
        "allocation (%s) reachable from [@hot] %s: the hot closure must be \
         allocation-free — hoist, restructure, or annotate [@lint.alloc_ok]"
        detail origin)
    roots

(* R9: nothing reachable from a task submitted to the domain pool may
   mutate shared (non-local) state. Depth 0 included: R3 only sees
   mutations written literally inside the closure; here the closure's
   helpers count too. *)
let r9_check tctx =
  let roots =
    List.filter_map
      (fun (s : Callgraph.submission) ->
        if in_typed_scope tctx s.sub_file then
          Some (s.sub_root, Printf.sprintf "%s:%d" s.sub_file s.sub_line)
        else None)
      (Callgraph.submissions tctx.graph Callgraph.Pool_task)
  in
  typed_findings tctx ~rule:"R9" ~fact_kind:Callgraph.Mutates ~waiver:"lint.domain_safe"
    ~follow_guarded:true
    ~skip_node:(fun ~root_id:_ _ -> false)
    ~message:(fun ~origin ~detail ->
      Printf.sprintf
        "shared-state mutation (%s) reachable from the pool task submitted at %s: \
         tasks run on other domains — restructure, or annotate [@lint.domain_safe] \
         if the writes are provably disjoint"
        detail origin)
    roots

(* R10: event handlers must not let exceptions escape. Roots are the
   RTR state machines' input functions, the cache server's handlers,
   and every closure handed to the netsim clock; [raise Exit] and
   raises under a catch-all [try] are allowed. *)
let r10_handler_fns =
  [ "connected"; "disconnected"; "receive"; "tick"; "poisoned"; "pending" ]

let r10_named_root (n : Callgraph.node) =
  match List.rev (String.split_on_char '.' n.id) with
  | fn :: m :: _ ->
    (String.equal m "Router_client" && mem_string fn r10_handler_fns)
    || (String.equal m "Cache_server" && under_prefix "handle" fn)
  | _ -> false

let r10_check tctx =
  let named =
    List.filter_map
      (fun (n : Callgraph.node) ->
        if r10_named_root n && in_typed_scope tctx n.file then Some (n.id, n.id)
        else None)
      (Callgraph.nodes tctx.graph)
  in
  let callbacks =
    List.filter_map
      (fun (s : Callgraph.submission) ->
        if in_typed_scope tctx s.sub_file then
          Some (s.sub_root, Printf.sprintf "the clock callback at %s:%d" s.sub_file s.sub_line)
        else None)
      (Callgraph.submissions tctx.graph Callgraph.Event_callback)
  in
  typed_findings tctx ~rule:"R10" ~fact_kind:Callgraph.Raises ~waiver:"lint.raise_ok"
    ~follow_guarded:false
    ~skip_node:(fun ~root_id:_ _ -> false)
    ~message:(fun ~origin ~detail ->
      Printf.sprintf
        "may raise (%s) on a path from %s: event handlers must not let exceptions \
         escape — catch and degrade, or annotate [@lint.raise_ok]"
        detail origin)
    (named @ callbacks)

(* R11: a handle that escapes into long-lived storage (ref, record
   field, container, closure capture) must not be able to reach a
   reset/clear of its issuing store — once the store recycles, the
   stored handle silently indexes reused slots. The escape and the
   reset need not sit in the same function: the reset is looked for in
   the whole call closure of the escaping binding, and the finding
   carries the witness chain from the escape to the resetting node. *)
let r11_check tctx =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Callgraph.node) ->
      let escapes =
        List.filter (fun (f : Callgraph.fact) -> f.kind = Callgraph.Handle_escape) n.facts
      in
      if escapes <> [] && in_typed_scope tctx n.file then begin
        let reachable =
          Callgraph.reach tctx.graph ~waiver:"lint.handle_ok" ~follow_guarded:true n.id
        in
        List.iter
          (fun (f : Callgraph.fact) ->
            let store =
              match String.index_opt f.detail ' ' with
              | Some i -> String.sub f.detail 0 i
              | None -> f.detail
            in
            match
              List.find_opt
                (fun ((m : Callgraph.node), _) ->
                  List.exists
                    (fun (g : Callgraph.fact) ->
                      g.kind = Callgraph.Store_reset && String.equal g.detail store)
                    m.facts)
                reachable
            with
            | Some (m, chain) ->
              let key = Printf.sprintf "%s|%d|%d" n.file f.fact_line f.fact_col in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                tctx.typed_add
                  (Finding.make
                     ~witness:(witness_of_chain tctx.graph chain)
                     ~rule:"R11" ~severity:Finding.Error ~file:n.file ~line:f.fact_line
                     ~col:f.fact_col
                     (Printf.sprintf
                        "%s while %s.reset/clear is reachable (via %s): the stored handle \
                         survives the recycling and indexes reused slots — keep handles \
                         frame-local, or annotate [@lint.handle_ok]"
                        f.detail store m.id))
              end
            | None -> ())
          escapes
      end)
    (Callgraph.nodes tctx.graph)

(* R12: per-argument handle provenance on call edges into the arena
   stores — a handle only means something to the store that issued
   it. Single-node findings; the self-referential witness keeps the
   report shape uniform with R8–R11. *)
let self_witness (n : Callgraph.node) =
  [ { Finding.step_fn = n.id; step_file = n.file; step_line = n.line } ]

let r12_check tctx =
  List.iter
    (fun (n : Callgraph.node) ->
      if in_typed_scope tctx n.file && not (mem_string "lint.handle_ok" n.attrs) then
        List.iter
          (fun (f : Callgraph.fact) ->
            if f.kind = Callgraph.Cross_store then
              tctx.typed_add
                (Finding.make ~witness:(self_witness n) ~rule:"R12" ~severity:Finding.Error
                   ~file:n.file ~line:f.fact_line ~col:f.fact_col
                   (Printf.sprintf
                      "cross-store handle flow: %s — a handle only indexes the store that \
                       issued it; fetch one from the right store, or annotate \
                       [@lint.handle_ok]"
                      f.detail)))
          n.facts)
    (Callgraph.nodes tctx.graph)

(* R13: every unsafe array access must be dominated by a bounds or
   liveness comparison on the same index identifier, in the same
   function — or carry a justified [@@lint.unsafe_idx_ok "..."]
   (empty waivers are dropped at graph-build time and do not count). *)
let r13_check tctx =
  List.iter
    (fun (n : Callgraph.node) ->
      if in_typed_scope tctx n.file && not (mem_string "lint.unsafe_idx_ok" n.attrs) then begin
        let guards =
          List.filter_map
            (fun (f : Callgraph.fact) ->
              if f.kind = Callgraph.Idx_guard then Some f.detail else None)
            n.facts
        in
        List.iter
          (fun (f : Callgraph.fact) ->
            if f.kind = Callgraph.Unsafe_idx then begin
              let idx =
                match String.rindex_opt f.detail ' ' with
                | Some i -> String.sub f.detail (i + 1) (String.length f.detail - i - 1)
                | None -> f.detail
              in
              if String.equal idx "<expr>" || not (mem_string idx guards) then
                tctx.typed_add
                  (Finding.make ~witness:(self_witness n) ~rule:"R13"
                     ~severity:Finding.Error ~file:n.file ~line:f.fact_line ~col:f.fact_col
                     (Printf.sprintf
                        "unchecked %s: no bounds/liveness comparison on the index in this \
                         function — guard it, or annotate the binding \
                         [@@lint.unsafe_idx_ok \"justification\"]"
                        f.detail))
            end)
          n.facts
      end)
    (Callgraph.nodes tctx.graph)

(* --- registry ------------------------------------------------------- *)

let all : t list =
  [ { id = "R1";
      name = "poly-compare";
      severity = Finding.Error;
      doc =
        "No polymorphic compare/equality/hash where a module-specific one exists: bare \
         `compare` (unless locally shadowed), Hashtbl.hash, List.mem, and =/<> applied \
         to abstract Pfx/Ipv4/Ipv6/Vrp/Asnum/Roa/Route values. Escape: [@lint.poly_ok].";
      kind = File_rule r1_check };
    { id = "R2";
      name = "unsafe-stdlib";
      severity = Finding.Error;
      doc =
        "lib/core, lib/rpki, lib/netaddr, lib/ptrie and lib/arena must not use Obj.*, \
         Marshal.*, Str.*, or the partial List.hd/List.tl/List.nth/Option.get. Escape: \
         [@lint.unsafe_ok].";
      kind =
        File_rule (fun ctx st -> if in_core_libs ctx.path then r2_check ctx st) };
    { id = "R3";
      name = "domain-capture";
      severity = Finding.Error;
      doc =
        "Closure literals passed to Pool.parallel_map/parallel_iter/parallel_tasks must \
         not mutate variables captured from the enclosing scope (refs, Hashtbl, Buffer, \
         array/field assignment). Escape: [@lint.domain_safe].";
      kind = File_rule r3_check };
    { id = "R4";
      name = "missing-mli";
      severity = Finding.Error;
      doc = "Every lib/**.ml has a matching .mli.";
      kind = Tree_rule r4_check };
    { id = "R5";
      name = "stdout-in-lib";
      severity = Finding.Error;
      doc =
        "No printing to stdout from lib/ (print_string, Printf.printf, Format.printf, \
         ...): stdout is reserved for bin/ and bench/. Escape: [@lint.stdout_ok].";
      kind =
        File_rule (fun ctx st -> if under_prefix "lib/" ctx.path then r5_check ctx st) };
    { id = "R6";
      name = "encode-outside-core";
      severity = Finding.Error;
      doc =
        "Pdu.encode may only be called from lib/rtr/pdu.ml, lib/rtr/cache_server.ml and \
         test code: per-session re-encoding defeats the encode-once fan-out. Escape: \
         [@lint.encode_ok].";
      kind = File_rule (fun ctx st -> if not (r6_exempt ctx.path) then r6_check ctx st) };
    { id = "R7";
      name = "alloc-in-hot";
      severity = Finding.Error;
      doc =
        "Functions marked [@@hot] must contain no syntactic allocation site (tuple, \
         record, closure, ref cell, list cons or other payload-carrying constructor, \
         array literal, lazy): the arena data plane is zero-allocation per query. \
         Allocating calls (Array.make, sprintf, ...) are beyond a syntactic check. \
         Escape: [@lint.alloc_ok].";
      kind = File_rule r7_check };
    { id = "R8";
      name = "hot-closure-alloc";
      severity = Finding.Error;
      doc =
        "[typed] Everything transitively reachable from a [@@hot] body must be \
         allocation-free, not just the body itself (R7): helpers called — or passed \
         around — from the hot path are walked through the .cmt call graph, and every \
         finding carries the witness chain. Hot callees are excluded (R7 covers them \
         as roots). Escape: [@lint.alloc_ok] on any binding along the chain.";
      kind = Typed_rule r8_check };
    { id = "R9";
      name = "domain-shared-mutation";
      severity = Finding.Error;
      doc =
        "[typed] Tasks submitted to Pool.parallel_map/parallel_iter/parallel_tasks \
         must not reach a mutation of non-local state (ref assignment, container \
         mutators, field writes) through any call chain — R3 only sees writes \
         literally inside the closure. Atomic.* is the sanctioned primitive and is \
         not flagged. Escape: [@lint.domain_safe] on any binding along the chain.";
      kind = Typed_rule r9_check };
    { id = "R10";
      name = "exception-escape";
      severity = Finding.Error;
      doc =
        "[typed] Router_client handlers (connected/disconnected/receive/tick/\
         poisoned/pending), Cache_server.handle*, and closures handed to \
         Clock.at/Clock.after/Wheel.advance must not reach a raise \
         (raise/failwith/invalid_arg/assert, or a known-partial stdlib call) outside \
         the allowlist: `raise Exit` and raises under a catch-all try are fine. \
         Escape: [@lint.raise_ok] on any binding along the chain.";
      kind = Typed_rule r10_check };
    { id = "R11";
      name = "handle-escape";
      severity = Finding.Error;
      doc =
        "[typed] An arena handle (Itrie.handle / Vrp_db.handle / Bgp_db.handle) stored \
         in a ref, record field or container, or captured by a closure, must not have \
         the issuing store's reset/clear reachable from the escaping binding: reset \
         recycles every slot and the stored handle silently indexes reused columns. \
         The finding carries the witness chain from the escape to the reset. Escape: \
         [@lint.handle_ok].";
      kind = Typed_rule r11_check };
    { id = "R12";
      name = "cross-store-handle";
      severity = Finding.Error;
      doc =
        "[typed] A handle typed for store A must not flow into a function of store B: \
         per-argument provenance (from the transparent handle aliases in the Typedtree) \
         is checked on every call edge into Itrie/Vrp_db/Bgp_db. Escape: \
         [@lint.handle_ok].";
      kind = Typed_rule r12_check };
    { id = "R13";
      name = "unchecked-unsafe";
      severity = Finding.Error;
      doc =
        "[typed] Every Array/Bytes.unsafe_get/unsafe_set must be dominated by a \
         bounds/liveness comparison on the same index identifier in the same function, \
         or carry [@@lint.unsafe_idx_ok \"justification\"] — the justification string is \
         mandatory; an empty waiver does not count.";
      kind = Typed_rule r13_check };
  ]

let find ids =
  List.filter (fun r -> List.exists (fun id -> String.equal id r.id) ids) all

let ids () = List.map (fun r -> r.id) all
