(** Lexical-scope bookkeeping for syntactic (untyped) AST checks: which
    names are currently shadowed by a local binding. *)

type t

val create : unit -> t
val is_bound : t -> string -> bool

val push : t -> string list -> unit
(** Add one shadowing level for each name (multiset semantics). *)

val pop : t -> string list -> unit

val with_names : t -> string list -> (unit -> 'a) -> 'a
(** [push], run, [pop] (also on exception). *)

val snapshot : t -> t
(** Copy the current state; see {!restore}. *)

val restore : t -> t -> unit
(** Reset to a prior {!snapshot} — used when leaving a submodule so its
    structure-level bindings do not leak into following items. *)

val pattern_vars : Parsetree.pattern -> string list
(** Every variable the pattern binds. *)

val binding_vars : Parsetree.value_binding list -> string list
