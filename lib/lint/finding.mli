(** Lint findings: location-tagged rule violations with text and JSON
    renderings (schema [rpki-maxlen/lint/v1]). *)

type severity = Error | Warning

val severity_to_string : severity -> string

type t = {
  rule : string;
  severity : severity;
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  message : string;
}

val make :
  rule:string -> severity:severity -> file:string -> line:int -> col:int -> string -> t

val fingerprint : t -> string
(** Stable identity used by [--baseline] filtering: ["rule|file|line|col"]. *)

val compare : t -> t -> int
(** Order by file, then line, column, rule — the report order. *)

val to_text : t -> string
(** ["file:line:col: severity [rule] message"]. *)

val to_json : t -> string
(** A single-line JSON object (keeps the report greppable per finding). *)

val json_escape : string -> string

val count_severity : t list -> int * int
(** [(errors, warnings)]. *)
