(** Lint findings: location-tagged rule violations with text and JSON
    renderings (schema [rpki-maxlen/lint/v2]). *)

type severity = Error | Warning

val severity_to_string : severity -> string

type step = {
  step_fn : string;  (** qualified function id, e.g. ["Rtr.Cache_server.handle_wire"] *)
  step_file : string;  (** path relative to the lint root *)
  step_line : int;  (** definition line of the function *)
}
(** One hop of a witness call chain (typed rules R8–R10): the path
    through the call graph from an entry point to the offending
    function. *)

type t = {
  rule : string;
  severity : severity;
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler reports *)
  message : string;
  witness : step list;
      (** Empty for the syntactic rules; non-empty for every typed
          finding (first step is the entry point, last the offender). *)
}

val make :
  ?witness:step list ->
  rule:string -> severity:severity -> file:string -> line:int -> col:int -> string -> t

val fingerprint : t -> string
(** Stable identity used by [--baseline] filtering: ["rule|file|line|col"].
    The witness chain is deliberately excluded — unrelated code motion
    reshapes chains without changing what the finding is about. *)

val compare : t -> t -> int
(** Order by file, then line, column, rule — the report order. *)

val to_text : t -> string
(** ["file:line:col: severity [rule] message"], with
    ["; witness: a (f:l) -> b (f:l)"] appended for typed findings. *)

val to_json : t -> string
(** A single-line JSON object (keeps the report greppable per finding);
    typed findings carry a nested ["witness"] array on the same line. *)

val json_escape : string -> string

val count_severity : t list -> int * int
(** [(errors, warnings)]. *)
