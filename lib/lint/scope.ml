(* Lexical-scope bookkeeping for the syntactic rules. The checkers walk
   the parsetree only — there is no typing environment — so "is this
   identifier the polymorphic [compare]?" is answered by tracking every
   binding form that could shadow the name: module-level [let]s seen so
   far in the current structure, [let ... in], function parameters,
   match/try/function case patterns and [for] indices. Counts (not
   booleans) so re-entrant shadowing unwinds correctly. *)

type t = (string, int) Hashtbl.t

let create () : t = Hashtbl.create 16

let is_bound (t : t) name =
  match Hashtbl.find_opt t name with Some n -> n > 0 | None -> false

let push (t : t) names =
  List.iter
    (fun n ->
      let c = match Hashtbl.find_opt t n with Some c -> c | None -> 0 in
      Hashtbl.replace t n (c + 1))
    names

let pop (t : t) names =
  List.iter
    (fun n ->
      match Hashtbl.find_opt t n with
      | Some c when c > 1 -> Hashtbl.replace t n (c - 1)
      | Some _ -> Hashtbl.remove t n
      | None -> ())
    names

let with_names (t : t) names f =
  push t names;
  Fun.protect ~finally:(fun () -> pop t names) f

(* Snapshot/restore brackets a submodule: bindings made inside must not
   leak into the items that follow it. *)
let snapshot (t : t) = Hashtbl.copy t

let restore (t : t) (saved : t) =
  Hashtbl.reset t;
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) saved

let rec pattern_vars (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (q, { txt; _ }) -> txt :: pattern_vars q
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_vars ps
  | Ppat_construct (_, Some (_, q)) | Ppat_variant (_, Some q) -> pattern_vars q
  | Ppat_record (fields, _) -> List.concat_map (fun (_, q) -> pattern_vars q) fields
  | Ppat_or (a, b) -> pattern_vars a @ pattern_vars b
  | Ppat_constraint (q, _) | Ppat_lazy q | Ppat_open (_, q) | Ppat_exception q ->
    pattern_vars q
  | Ppat_any | Ppat_constant _ | Ppat_interval _ | Ppat_construct (_, None)
  | Ppat_variant (_, None) | Ppat_type _ | Ppat_unpack _ | Ppat_extension _ ->
    []

let binding_vars (vbs : Parsetree.value_binding list) =
  List.concat_map (fun (vb : Parsetree.value_binding) -> pattern_vars vb.pvb_pat) vbs
