(* Discovery and decoding of the compiler's -bin-annot artifacts. The
   typed phase feeds on [Typedtree] structures, which only exist where
   a build has run: dune writes one [.cmt] per compiled module under
   [_build/default/**/.objs/byte/] (libraries) and [.eobjs/byte/]
   (executables). We walk the build dir, read every implementation
   cmt, and map each back to its root-relative source path — the key
   findings and rule scoping use. Absent or stale artifacts are a
   degradation, never a failure: the caller falls back to the
   syntactic phase with a warning. *)

type unit_info = {
  modname : string;
  unit_id : string;
  source : string;
  structure : Typedtree.structure;
}

type t = {
  cmt_dir : string;
  units : unit_info list;
}

let default_cmt_dir ~root = Filename.concat (Filename.concat root "_build") "default"

(* "Rtr__Cache_server" -> "Rtr.Cache_server"; dune's executable
   modules ("Dune__exe__Test_rtr") lose their synthetic namespace
   entirely. Real module names never contain "__" outside dune's
   wrapping convention, so the split is safe here. *)
let normalize_modname m =
  let m =
    let prefix = "Dune__exe__" in
    let pl = String.length prefix in
    if String.length m > pl && String.equal (String.sub m 0 pl) prefix then
      String.sub m pl (String.length m - pl)
    else m
  in
  let buf = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf m.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* A cmt records its source as a path relative to dune's workspace
   root (e.g. "lib/arena/vrp_db.ml"), which need not coincide with the
   lint root — the fixture corpus lints with root deep inside the
   tree. Peel leading segments until the file exists under [root]. *)
let relocate_source ~root sourcefile =
  let exists rel = Sys.file_exists (Filename.concat root rel) in
  let rec peel rel =
    if exists rel then Some rel
    else
      match String.index_opt rel '/' with
      | Some i -> peel (String.sub rel (i + 1) (String.length rel - i - 1))
      | None -> None
  in
  peel sourcefile

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load ~root ~cmt_dir =
  if not (Sys.file_exists cmt_dir && Sys.is_directory cmt_dir) then
    Error (Printf.sprintf "no build artifacts at %s (run `dune build` first)" cmt_dir)
  else begin
    let files = List.sort String.compare (walk [] cmt_dir) in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let units =
      List.filter_map
        (fun file ->
          match Cmt_format.read_cmt file with
          | exception _ -> None (* stale magic / foreign artifact: skip *)
          | cmt -> (
            match cmt.Cmt_format.cmt_annots with
            | Cmt_format.Implementation structure -> (
              match cmt.Cmt_format.cmt_sourcefile with
              | None -> None
              | Some sourcefile -> (
                match relocate_source ~root sourcefile with
                | None -> None (* generated module (lib alias): no source to report *)
                | Some source ->
                  let modname = cmt.Cmt_format.cmt_modname in
                  if Hashtbl.mem seen modname then None
                  else begin
                    Hashtbl.add seen modname ();
                    Some
                      { modname;
                        unit_id = normalize_modname modname;
                        source;
                        structure }
                  end))
            | _ -> None))
        files
    in
    if units = [] then
      Error (Printf.sprintf "no readable .cmt implementations under %s" cmt_dir)
    else Ok { cmt_dir; units }
  end
