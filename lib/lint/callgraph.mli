(** Interprocedural def/use graph over [Typedtree], feeding the typed
    rules (R8 hot-closure-alloc, R9 domain-shared-mutation, R10
    exception-escape).

    Nodes are module-level value bindings, identified by their
    normalized qualified name ("Rtr.Cache_server.handle"); every local
    definition inside a binding is attributed to it. Edges are
    identifier {e references} (not just call heads), so a function
    passed as a value stays reachable — a deliberate
    over-approximation. Closures submitted to the [lib/parallel] pool
    or to netsim clock callbacks become synthetic nodes
    ("Owner.publish.<fun:42>") recorded as submissions. *)

type fact_kind =
  | Alloc  (** heap allocation in the body (R8) *)
  | Mutates  (** writes a free/top-level mutable target (R9) *)
  | Raises  (** may raise outside the allowlist (R10) *)
  | Handle_escape
      (** an arena handle stored in a ref/field/container or captured
          by a closure; detail starts with the issuing store's module
          name (R11) *)
  | Store_reset
      (** a reference to a store's [reset]/[clear]; detail is the
          store's module name (R11) *)
  | Cross_store
      (** a handle typed for store A passed to a function of store B
          (R12) *)
  | Unsafe_idx
      (** an [Array.unsafe_get/set] / [Bytes.unsafe_get/set]; detail
          ends with the index identifier, or ["<expr>"] (R13) *)
  | Idx_guard
      (** a comparison operator applied to an identifier — the guard
          evidence R13 matches against [Unsafe_idx] (detail is the
          identifier) *)

type fact = {
  kind : fact_kind;
  detail : string;  (** e.g. ["list cons"], ["incr on hits"], ["failwith"] *)
  fact_line : int;
  fact_col : int;
}

type call = {
  callee : string;  (** node id *)
  call_line : int;
  guarded : bool;
      (** reference sits under a catch-all [try]: R10 does not follow
          the edge, R8/R9 still do *)
}

type node = {
  id : string;
  file : string;  (** source path relative to the lint root *)
  line : int;  (** binding definition line *)
  attrs : string list;  (** binding attributes: ["hot"], waivers, ... *)
  mutable calls : call list;
  mutable facts : fact list;
}

type sub_kind = Pool_task | Event_callback

type submission = {
  sub_kind : sub_kind;
  sub_root : string;  (** node the submitted task/callback starts at *)
  sub_file : string;
  sub_line : int;
}

type t

val build : Cmt_loader.t -> t
(** Two passes: declare every binding across every unit (so forward
    and cross-module references resolve regardless of load order),
    then analyze bodies for facts, edges and submissions. *)

val find : t -> string -> node option

val nodes : t -> node list
(** All nodes, sorted by id. *)

val node_count : t -> int

val submissions : t -> sub_kind -> submission list
(** Deduplicated, in discovery order. *)

val reach : t -> waiver:string -> follow_guarded:bool -> string -> (node * string list) list
(** BFS from a root node id. Skips nodes carrying the [waiver]
    attribute (a waiver anywhere on a path kills everything beyond it)
    and, when [follow_guarded] is false, edges made under a catch-all
    [try]. Each reachable node comes with its witness chain of node
    ids, root first — a shortest path, deterministic across runs. The
    root itself is included (chain [[root]]); an unknown or waived
    root yields []. *)

(** {2 Programmatic construction} — for unit-testing reachability on a
    hand-built graph, without compiling fixtures. *)

val create : unit -> t

val add_node :
  t ->
  id:string ->
  file:string ->
  line:int ->
  ?attrs:string list ->
  ?facts:fact list ->
  ?calls:call list ->
  unit ->
  node
(** Idempotent on [id]: re-adding returns a fresh value but keeps the
    first registration in the graph. *)
