(* Orchestration: discover files, parse them, run the rule registry
   (and, when enabled, the typed phase over .cmt artifacts), filter
   against a baseline, render text/JSON. Directory walks skip build
   products, the deliberately-bad lint fixture corpus (those are
   linted by tests via an explicit root), and any directory carrying a
   [.lint-ignore] marker file. *)

let skip_dirs = [ "_build"; ".git"; "lint_fixtures"; "node_modules" ]
let ignore_marker = ".lint-ignore"

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

(* '/'-joined path relative to [root]; findings and rule scoping
   ("lib/core/...") key off this form on every platform. *)
let relativize ~root file =
  let root = if Filename.check_suffix root "/" then root else root ^ "/" in
  let rl = String.length root in
  if String.length file > rl && String.equal (String.sub file 0 rl) root then
    String.sub file rl (String.length file - rl)
  else file

let rec walk acc path =
  if Sys.is_directory path then
    if Sys.file_exists (Filename.concat path ignore_marker) then acc
    else
      Array.fold_left
        (fun acc entry ->
          if List.exists (String.equal entry) skip_dirs then acc
          else walk acc (Filename.concat path entry))
        acc
        (let entries = Sys.readdir path in
         Array.sort String.compare entries;
         entries)
  else if is_source path then path :: acc
  else acc

let discover ~root paths =
  let abs p = if Filename.is_relative p then Filename.concat root p else p in
  let files =
    List.fold_left
      (fun acc p ->
        let p = abs p in
        if Sys.file_exists p then walk acc p
        else begin
          Printf.eprintf "lint: no such file or directory: %s\n" p;
          acc
        end)
      [] paths
  in
  List.sort_uniq String.compare (List.map (relativize ~root) files)

type report = {
  root : string;
  files_scanned : int;
  rules_run : string list;
  findings : Finding.t list;
  typed_units : int;
  typed_warning : string option;
}

let parse_structure ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  Parse.implementation lexbuf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run ?(rules = Rules.all) ?(typed = false) ?cmt_dir ~root paths =
  let rel_files = discover ~root paths in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Per-file rules parse each .ml once and hand the tree to every
     applicable checker; a file that does not parse yields a single
     parse-error finding instead. *)
  List.iter
    (fun rel ->
      if Filename.check_suffix rel ".ml" then begin
        let file = Filename.concat root rel in
        match parse_structure ~file:rel (read_file file) with
        | st ->
          let ctx = { Rules.path = rel; add } in
          List.iter
            (fun (r : Rules.t) ->
              match r.kind with
              | Rules.File_rule check -> check ctx st
              | Rules.Tree_rule _ | Rules.Typed_rule _ -> ())
            rules
        | exception exn ->
          let line, col, msg =
            match Location.error_of_exn exn with
            | Some (`Ok (e : Location.error)) ->
              let loc = e.main.loc.loc_start in
              ( loc.pos_lnum,
                loc.pos_cnum - loc.pos_bol,
                Format.asprintf "%t" e.main.txt )
            | _ -> (1, 0, Printexc.to_string exn)
          in
          add
            (Finding.make ~rule:"parse" ~severity:Finding.Error ~file:rel ~line ~col
               (Printf.sprintf "could not parse: %s" msg))
      end)
    rel_files;
  List.iter
    (fun (r : Rules.t) ->
      match r.kind with
      | Rules.Tree_rule check -> check { Rules.tree_files = rel_files; tree_add = add }
      | Rules.File_rule _ | Rules.Typed_rule _ -> ())
    rules;
  (* Typed phase: load .cmt artifacts, build the call graph once, and
     hand it to every typed rule. Unloadable artifacts degrade to a
     warning — the syntactic findings above stand on their own. *)
  let typed_rules =
    List.filter (fun (r : Rules.t) -> match r.kind with Rules.Typed_rule _ -> true | _ -> false) rules
  in
  let typed_units, typed_warning =
    if not (typed && typed_rules <> []) then (0, None)
    else begin
      let cmt_dir =
        match cmt_dir with Some d -> d | None -> Cmt_loader.default_cmt_dir ~root
      in
      match Cmt_loader.load ~root ~cmt_dir with
      | Error msg ->
        (0, Some (Printf.sprintf "typed phase skipped: %s" msg))
      | Ok loader ->
        let graph = Callgraph.build loader in
        let tctx = { Rules.typed_files = rel_files; graph; typed_add = add } in
        List.iter
          (fun (r : Rules.t) ->
            match r.kind with Rules.Typed_rule check -> check tctx | _ -> ())
          typed_rules;
        (List.length loader.units, None)
    end
  in
  (* rules_run reports what actually executed: typed rules drop out
     when the phase is off or degraded. *)
  let executed =
    List.filter
      (fun (r : Rules.t) ->
        match r.kind with
        | Rules.Typed_rule _ -> typed && typed_units > 0
        | _ -> true)
      rules
  in
  { root;
    files_scanned = List.length rel_files;
    rules_run = List.map (fun (r : Rules.t) -> r.id) executed;
    findings = List.sort Finding.compare !findings;
    typed_units;
    typed_warning }

(* --- baseline -------------------------------------------------------- *)

(* A baseline is a previous JSON report: any finding whose fingerprint
   appears in it is dropped. The reader is deliberately line-oriented —
   the emitter prints one finding object per line — so no JSON parser is
   needed. *)
let find_substring line marker =
  let n = String.length line and m = String.length marker in
  let rec scan i =
    if i + m > n then None
    else if String.equal (String.sub line i m) marker then Some (i + m)
    else scan (i + 1)
  in
  scan 0

let load_baseline path =
  let marker = "\"fingerprint\": \"" in
  let fingerprints = ref [] in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match find_substring line marker with
          | Some start -> (
            match String.index_from_opt line start '"' with
            | Some stop ->
              fingerprints := String.sub line start (stop - start) :: !fingerprints
            | None -> ())
          | None -> ()
        done
      with End_of_file -> ());
  !fingerprints

let apply_baseline ~baseline report =
  let keep f = not (List.exists (String.equal (Finding.fingerprint f)) baseline) in
  { report with findings = List.filter keep report.findings }

(* --- rendering ------------------------------------------------------- *)

let to_text report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_text f);
      Buffer.add_char buf '\n')
    report.findings;
  let errors, warnings = Finding.count_severity report.findings in
  Buffer.add_string buf
    (Printf.sprintf "%d file%s scanned, %d error%s, %d warning%s\n" report.files_scanned
       (if report.files_scanned = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s"));
  Buffer.contents buf

let schema = "rpki-maxlen/lint/v2"

let to_json report =
  let buf = Buffer.create 4096 in
  let errors, warnings = Finding.count_severity report.findings in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": \"%s\",\n" schema);
  (* environment header, matching the BENCH_*.json convention *)
  Buffer.add_string buf
    (Printf.sprintf "  \"ocaml_version\": \"%s\",\n" (Finding.json_escape Sys.ocaml_version));
  Buffer.add_string buf (Printf.sprintf "  \"word_size\": %d,\n" Sys.word_size);
  Buffer.add_string buf
    (Printf.sprintf "  \"root\": \"%s\",\n" (Finding.json_escape report.root));
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" report.files_scanned);
  Buffer.add_string buf (Printf.sprintf "  \"typed_units\": %d,\n" report.typed_units);
  (match report.typed_warning with
  | Some w ->
    Buffer.add_string buf
      (Printf.sprintf "  \"typed_warning\": \"%s\",\n" (Finding.json_escape w))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  \"rules\": [%s],\n"
       (String.concat ", "
          (List.map (fun id -> "\"" ^ Finding.json_escape id ^ "\"") report.rules_run)));
  Buffer.add_string buf (Printf.sprintf "  \"error_count\": %d,\n" errors);
  Buffer.add_string buf (Printf.sprintf "  \"warning_count\": %d,\n" warnings);
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i f ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      Buffer.add_string buf (Finding.to_json f))
    report.findings;
  Buffer.add_string buf (if report.findings = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf

(* SARIF 2.1.0, the minimal profile code-scanning UIs ingest: one run,
   the executed rules as tool.driver.rules (id, name, one-paragraph
   help), one result per finding with a single physical location, and
   the witness chain as relatedLocations. Columns are 1-based in SARIF
   where findings carry 0-based ones. *)
let to_sarif report =
  let e = Finding.json_escape in
  let buf = Buffer.create 8192 in
  let loc ~indent ~file ~line ~col =
    Printf.sprintf
      "%s{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": \
       {\"startLine\": %d, \"startColumn\": %d}}"
      indent (e file) line (col + 1)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Buffer.add_string buf "  \"version\": \"2.1.0\",\n";
  Buffer.add_string buf "  \"runs\": [\n    {\n";
  Buffer.add_string buf "      \"tool\": {\n        \"driver\": {\n";
  Buffer.add_string buf "          \"name\": \"rpki-maxlen-lint\",\n";
  Buffer.add_string buf
    (Printf.sprintf "          \"semanticVersion\": \"%s\",\n" (e schema));
  Buffer.add_string buf "          \"rules\": [";
  let executed = Rules.find report.rules_run in
  List.iteri
    (fun i (r : Rules.t) ->
      Buffer.add_string buf (if i = 0 then "\n            " else ",\n            ");
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\": \"%s\", \"name\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}, \
            \"defaultConfiguration\": {\"level\": \"%s\"}}"
           (e r.id) (e r.name) (e r.doc)
           (match r.severity with Finding.Error -> "error" | Finding.Warning -> "warning")))
    executed;
  Buffer.add_string buf (if executed = [] then "]\n" else "\n          ]\n");
  Buffer.add_string buf "        }\n      },\n";
  Buffer.add_string buf "      \"results\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf "        {\n";
      Buffer.add_string buf (Printf.sprintf "          \"ruleId\": \"%s\",\n" (e f.rule));
      Buffer.add_string buf
        (Printf.sprintf "          \"level\": \"%s\",\n"
           (Finding.severity_to_string f.severity));
      Buffer.add_string buf
        (Printf.sprintf "          \"message\": {\"text\": \"%s\"},\n" (e f.message));
      Buffer.add_string buf
        (Printf.sprintf "          \"partialFingerprints\": {\"lintFingerprint/v1\": \"%s\"},\n"
           (e (Finding.fingerprint f)));
      Buffer.add_string buf "          \"locations\": [\n";
      Buffer.add_string buf
        (loc ~indent:"            " ~file:f.file ~line:f.line ~col:f.col);
      Buffer.add_string buf "}\n          ]";
      (match f.witness with
      | [] -> ()
      | steps ->
        Buffer.add_string buf ",\n          \"relatedLocations\": [";
        List.iteri
          (fun j (s : Finding.step) ->
            Buffer.add_string buf (if j = 0 then "\n" else ",\n");
            Buffer.add_string buf
              (loc ~indent:"            " ~file:s.step_file ~line:s.step_line ~col:0);
            Buffer.add_string buf
              (Printf.sprintf ", \"message\": {\"text\": \"%s\"}}" (e s.step_fn)))
          steps;
        Buffer.add_string buf "\n          ]");
      Buffer.add_string buf "\n        }")
    report.findings;
  Buffer.add_string buf (if report.findings = [] then "]\n" else "\n      ]\n");
  Buffer.add_string buf "    }\n  ]\n}\n";
  Buffer.contents buf

let has_errors report =
  List.exists (fun (f : Finding.t) -> f.severity = Finding.Error) report.findings
