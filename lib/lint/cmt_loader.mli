(** Discovery and decoding of [-bin-annot] artifacts ([.cmt]) for the
    typed lint phase.

    Dune emits a [.cmt] per compiled module; this module walks a build
    directory, keeps every implementation unit, and maps each back to
    its root-relative source file. Loading degrades, never crashes:
    unreadable or sourceless artifacts are skipped, and an absent
    build directory is an [Error] the caller turns into a
    fall-back-to-syntactic warning. *)

type unit_info = {
  modname : string;  (** raw compilation-unit name, e.g. ["Rtr__Cache_server"] *)
  unit_id : string;  (** normalized, e.g. ["Rtr.Cache_server"] *)
  source : string;  (** source path relative to the lint root *)
  structure : Typedtree.structure;
}

type t = {
  cmt_dir : string;
  units : unit_info list;  (** deduplicated by [modname], sorted walk order *)
}

val default_cmt_dir : root:string -> string
(** [root/_build/default] — where dune puts the default context. *)

val normalize_modname : string -> string
(** ["Rtr__Cache_server"] → ["Rtr.Cache_server"];
    ["Dune__exe__Test_rtr"] → ["Test_rtr"]. *)

val load : root:string -> cmt_dir:string -> (t, string) result
(** Read every [.cmt] under [cmt_dir]. [Error] when the directory does
    not exist or holds no readable implementation — the message is the
    warning shown when the typed phase degrades to Parsetree-only. *)
