(** Path-compressed (Patricia) binary prefix trie keyed by
    {!Netaddr.Pfx.t}.

    One trie holds prefixes of a single address family. Each node
    stores its full prefix and branches at the first bit where its
    subtrees differ, so sparse real-world tables (VRP sets, BGP
    tables) collapse long single-child spines into one edge: lookup
    depth is O(stored prefixes on the path), not O(address bits).

    The trie supports the three lookups the RPKI data path needs:
    exact match (route to VRP), longest-prefix match (forwarding), and
    covering-set enumeration (RFC 6811 origin validation: all stored
    prefixes that cover a route). The [iter_]/[exists_]/[fold_]
    traversal variants visit matches in place without materialising
    intermediate lists — the hot validation paths allocate nothing per
    query. *)

type 'a t

val create : Netaddr.Pfx.afi -> 'a t
(** A fresh, empty trie for one address family. *)

val afi : 'a t -> Netaddr.Pfx.afi

val cardinal : 'a t -> int
(** Number of bound prefixes. O(1). *)

val is_empty : 'a t -> bool

val add : 'a t -> Netaddr.Pfx.t -> 'a -> unit
(** [add t p v] binds [p] to [v], replacing any previous binding.
    @raise Invalid_argument when [p]'s family differs from [afi t]. *)

val update : 'a t -> Netaddr.Pfx.t -> ('a option -> 'a option) -> unit
(** [update t p f] rebinds [p] according to [f (find t p)]; [f]
    returning [None] removes the binding. Single descent: the target
    node is located once, not once to read and again to write. *)

val remove : 'a t -> Netaddr.Pfx.t -> unit
(** Remove the binding for [p], contracting now-useless interior
    nodes. *)

val find : 'a t -> Netaddr.Pfx.t -> 'a option
(** Exact-match lookup. *)

val mem : 'a t -> Netaddr.Pfx.t -> bool

val longest_match : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t * 'a) option
(** [longest_match t p] is the bound prefix that covers [p] with the
    greatest length, i.e. the forwarding decision for a packet to [p]. *)

val covering : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t * 'a) list
(** All bound prefixes that cover [p] (including [p] itself when bound),
    ordered from shortest to longest. *)

val iter_covering : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t -> 'a -> unit) -> unit
(** [iter_covering t p f] applies [f] to every bound prefix covering
    [p], shortest first, without building a list. Allocation-free. *)

val exists_covering : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t -> 'a -> bool) -> bool
(** [exists_covering t p f] is [true] iff some bound prefix covering
    [p] satisfies [f]. Short-circuits on the first hit; visits
    shortest-first. Allocation-free. *)

val covered_by : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t * 'a) list
(** All bound prefixes that [p] covers (subtree enumeration, including
    [p] itself when bound), in address-then-length order. *)

val iter_covered_by : 'a t -> Netaddr.Pfx.t -> (Netaddr.Pfx.t -> 'a -> unit) -> unit
(** [iter_covered_by t p f] applies [f] to every bound prefix covered
    by [p], in address-then-length order, without building a list.
    Allocation-free. *)

val fold_covered_by :
  'a t -> Netaddr.Pfx.t -> init:'b -> f:('b -> Netaddr.Pfx.t -> 'a -> 'b) -> 'b
(** Fold over the bound prefixes covered by [p], in address-then-length
    order. The traversal itself allocates nothing. *)

val has_descendant : 'a t -> Netaddr.Pfx.t -> bool
(** [has_descendant t p] is true when some bound prefix is a strict
    subprefix of [p]. *)

val iter : 'a t -> (Netaddr.Pfx.t -> 'a -> unit) -> unit
(** In-order traversal (address, then length). *)

val fold : 'a t -> init:'b -> f:('b -> Netaddr.Pfx.t -> 'a -> 'b) -> 'b
val to_list : 'a t -> (Netaddr.Pfx.t * 'a) list
val of_list : Netaddr.Pfx.afi -> (Netaddr.Pfx.t * 'a) list -> 'a t
