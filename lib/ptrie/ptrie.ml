module Pfx = Netaddr.Pfx

(* Path-compressed (Patricia/radix) binary trie.

   Every node carries its full prefix; children strictly extend the
   parent's prefix and are indexed by the first bit past it (bit
   [length parent.prefix] of the child's prefix). Long single-child
   spines therefore collapse into one edge, and traversal depth is
   bounded by the number of distinct stored prefixes along the lookup
   path instead of the 32/128 address bits a bit-per-node trie walks.

   Structural invariants, restored by every mutating call:
   - the root is a permanent /0 sentinel (so traversals never
     special-case the empty trie);
   - every non-root leaf holds a value;
   - every non-root valueless node has two children (fork nodes are
     created only at branch points; removal contracts pass-throughs).
   Consequently every non-empty subtree below the root contains at
   least one value.

   Lookup traversals allocate nothing: they walk child pointers,
   compare packed prefixes and invoke the caller's closure in place —
   no intermediate lists, options or pairs. *)

type 'a node = {
  prefix : Pfx.t;
  mutable value : 'a option;
  mutable left : 'a node option;
  mutable right : 'a node option;
}

type 'a t = { family : Pfx.afi; root : 'a node; mutable count : int }

let root_prefix = function
  | Pfx.Afi_v4 -> Pfx.of_string_exn "0.0.0.0/0"
  | Pfx.Afi_v6 -> Pfx.of_string_exn "::/0"

let create family =
  { family; root = { prefix = root_prefix family; value = None; left = None; right = None }; count = 0 }

let afi t = t.family
let cardinal t = t.count
let is_empty t = t.count = 0

let check_family t p =
  if Pfx.afi p <> t.family then invalid_arg "Ptrie: address family mismatch"

let set_child n right c = if right then n.right <- Some c else n.left <- Some c

(* --- insertion --- *)

let leaf p v = { prefix = p; value = Some v; left = None; right = None }

let add t p v =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    (* invariant: n.prefix covers p *)
    let nl = Pfx.length n.prefix in
    if nl = pl then begin
      if n.value = None then t.count <- t.count + 1;
      n.value <- Some v
    end
    else begin
      let dir = Pfx.bit p nl in
      match (if dir then n.right else n.left) with
      | None ->
        set_child n dir (leaf p v);
        t.count <- t.count + 1
      | Some c ->
        let k = Pfx.common_length p c.prefix in
        if k = Pfx.length c.prefix then go c (* c.prefix covers p *)
        else if k = pl then begin
          (* p sits on the edge above c: splice a valued node in *)
          let m = leaf p v in
          set_child m (Pfx.bit c.prefix pl) c;
          set_child n dir m;
          t.count <- t.count + 1
        end
        else begin
          (* p and c.prefix diverge at bit k: fork with a branch node *)
          let fork = { prefix = Pfx.truncate p k; value = None; left = None; right = None } in
          set_child fork (Pfx.bit p k) (leaf p v);
          set_child fork (Pfx.bit c.prefix k) c;
          set_child n dir fork;
          t.count <- t.count + 1
        end
    end
  in
  go t.root

(* --- single-descent update (insert, rebind or remove-and-contract) --- *)

let update t p f =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    let nl = Pfx.length n.prefix in
    if nl = pl then begin
      (* n.prefix = p: we only descend through covering nodes *)
      match f n.value, n.value with
      | Some v, None ->
        n.value <- Some v;
        t.count <- t.count + 1
      | Some v, Some _ -> n.value <- Some v
      | None, Some _ ->
        n.value <- None;
        t.count <- t.count - 1
      | None, None -> ()
    end
    else begin
      let dir = Pfx.bit p nl in
      match (if dir then n.right else n.left) with
      | None ->
        (match f None with
         | None -> ()
         | Some v ->
           set_child n dir (leaf p v);
           t.count <- t.count + 1)
      | Some c ->
        let k = Pfx.common_length p c.prefix in
        if k = Pfx.length c.prefix then begin
          go c;
          (* contract c if the update left it carrying no information *)
          if c.value = None then
            match c.left, c.right with
            | None, None -> if dir then n.right <- None else n.left <- None
            | Some only, None | None, Some only ->
              if dir then n.right <- Some only else n.left <- Some only
            | Some _, Some _ -> ()
        end
        else
          (match f None with
           | None -> ()
           | Some v ->
             if k = pl then begin
               let m = leaf p v in
               set_child m (Pfx.bit c.prefix pl) c;
               set_child n dir m
             end
             else begin
               let fork = { prefix = Pfx.truncate p k; value = None; left = None; right = None } in
               set_child fork (Pfx.bit p k) (leaf p v);
               set_child fork (Pfx.bit c.prefix k) c;
               set_child n dir fork
             end;
             t.count <- t.count + 1)
    end
  in
  go t.root

(* [fun _ -> None] is a constant closure, so removal shares the
   single-descent unbind-and-contract path without allocating. *)
let remove t p = update t p (fun _ -> None)

(* --- exact lookups --- *)

(* Descend by the key's bits without verifying prefixes on the way
   down: if [p] is stored the path ends exactly at its node, and the
   final equality check rejects every other outcome. *)
let find t p =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    let nl = Pfx.length n.prefix in
    if nl >= pl then if nl = pl && Pfx.equal n.prefix p then n.value else None
    else
      match (if Pfx.bit p nl then n.right else n.left) with
      | None -> None
      | Some c -> go c
  in
  go t.root

let mem t p = find t p <> None

(* --- covering traversals (ancestors of [p]) --- *)

(* A node on the bit-directed path either covers [p] — consume it and
   keep descending — or has diverged, in which case everything below
   it has too and the walk stops. *)

let iter_covering t p f =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    if Pfx.subset p n.prefix then begin
      (match n.value with Some v -> f n.prefix v | None -> ());
      let nl = Pfx.length n.prefix in
      if nl < pl then
        match (if Pfx.bit p nl then n.right else n.left) with
        | Some c -> go c
        | None -> ()
    end
  in
  go t.root

let exists_covering t p f =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    Pfx.subset p n.prefix
    && ((match n.value with Some v -> f n.prefix v | None -> false)
        ||
        let nl = Pfx.length n.prefix in
        nl < pl
        && (match (if Pfx.bit p nl then n.right else n.left) with
            | Some c -> go c
            | None -> false))
  in
  go t.root

let covering t p =
  let acc = ref [] in
  iter_covering t p (fun q v -> acc := (q, v) :: !acc);
  List.rev !acc

let longest_match t p =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n best =
    if not (Pfx.subset p n.prefix) then best
    else begin
      let best = if n.value = None then best else Some n in
      let nl = Pfx.length n.prefix in
      if nl >= pl then best
      else
        match (if Pfx.bit p nl then n.right else n.left) with
        | Some c -> go c best
        | None -> best
    end
  in
  match go t.root None with
  | Some ({ value = Some v; _ } as n) -> Some (n.prefix, v)
  | Some { value = None; _ } | None -> None

(* --- covered-by traversals (the subtree under [p]) --- *)

(* In-order enumeration: a node's prefix sorts (address, then length)
   before everything in its subtree, and the whole left subtree before
   the right one. *)
let rec fold_node n ~init ~f =
  let init = match n.value with Some v -> f init n.prefix v | None -> init in
  let init = match n.left with Some c -> fold_node c ~init ~f | None -> init in
  match n.right with Some c -> fold_node c ~init ~f | None -> init

let rec iter_node n f =
  (match n.value with Some v -> f n.prefix v | None -> ());
  (match n.left with Some c -> iter_node c f | None -> ());
  match n.right with Some c -> iter_node c f | None -> ()

(* Topmost node whose subtree is exactly the stored prefixes covered by
   [p] (with path compression its prefix may be strictly longer than
   [p]). As in [find], divergence surfaces in the final subset check. *)
let subtree_root t p =
  check_family t p;
  let pl = Pfx.length p in
  let rec go n =
    let nl = Pfx.length n.prefix in
    if nl >= pl then if Pfx.subset n.prefix p then Some n else None
    else
      match (if Pfx.bit p nl then n.right else n.left) with
      | None -> None
      | Some c -> go c
  in
  go t.root

let iter_covered_by t p f =
  match subtree_root t p with
  | None -> ()
  | Some n -> iter_node n f

let fold_covered_by t p ~init ~f =
  match subtree_root t p with
  | None -> init
  | Some n -> fold_node n ~init ~f

let covered_by t p =
  List.rev (fold_covered_by t p ~init:[] ~f:(fun acc q v -> (q, v) :: acc))

let has_descendant t p =
  match subtree_root t p with
  | None -> false
  | Some n ->
    (* A subtree rooted strictly below [p] always contains a value
       (every non-root leaf holds one); at [p] itself any child
       subtree does. *)
    Pfx.length n.prefix > Pfx.length p || n.left <> None || n.right <> None

(* --- whole-trie traversals --- *)

let fold t ~init ~f = fold_node t.root ~init ~f
let iter t f = iter_node t.root f
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc p v -> (p, v) :: acc))

let of_list family l =
  let t = create family in
  List.iter (fun (p, v) -> add t p v) l;
  t
