type t = int

let bits = 32
let max_addr = (1 lsl 32) - 1
let zero = 0
let of_int32_bits n = n land max_addr
let to_int a = a

let of_octets a b c d =
  ((a land 0xff) lsl 24)
  lor ((b land 0xff) lsl 16)
  lor ((c land 0xff) lsl 8)
  lor (d land 0xff)

let to_octets a = ((a lsr 24) land 0xff, (a lsr 16) land 0xff, (a lsr 8) land 0xff, a land 0xff)

(* Hand-rolled parser: [String.split_on_char] plus [int_of_string] would
   accept forms like "+1" and "0x10" that are not valid dotted quads. *)
let of_string s =
  let n = String.length s in
  let err = Error (Printf.sprintf "invalid IPv4 address %S" s) in
  let rec octet i acc digits =
    if i >= n || s.[i] = '.' then
      if digits = 0 || acc > 255 then None else Some (acc, i)
    else
      match s.[i] with
      | '0' .. '9' ->
        if digits >= 3 then None
        else octet (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) (digits + 1)
      | _ -> None
  in
  let rec go i k acc =
    match octet i 0 0 with
    | None -> err
    | Some (v, j) ->
      let acc = (acc lsl 8) lor v in
      if k = 3 then if j = n then Ok acc else err
      else if j < n && s.[j] = '.' then go (j + 1) (k + 1) acc
      else err
  in
  go 0 0 0

let of_string_exn s =
  match of_string s with Ok a -> a | Error e -> invalid_arg e

let to_string a =
  let x, y, z, w = to_octets a in
  Printf.sprintf "%d.%d.%d.%d" x y z w

let compare = Int.compare
let equal = Int.equal
let pp ppf a = Format.pp_print_string ppf (to_string a)

let bit a i =
  if i < 0 || i >= bits then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (31 - i)) land 1 = 1

let set_bit a i v =
  if i < 0 || i >= bits then invalid_arg "Ipv4.set_bit: index out of range";
  let m = 1 lsl (31 - i) in
  if v then a lor m else a land lnot m

let succ a = (a + 1) land max_addr

(* Leading zeros of a 32-bit value (32 when zero). The local refs are
   compiled to mutable stack slots, so this allocates nothing. *)
let clz32 x =
  if x = 0 then 32
  else begin
    let n = ref 0 and x = ref x in
    if !x land 0xffff0000 = 0 then begin n := !n + 16; x := !x lsl 16 end;
    if !x land 0xff000000 = 0 then begin n := !n + 8; x := !x lsl 8 end;
    if !x land 0xf0000000 = 0 then begin n := !n + 4; x := !x lsl 4 end;
    if !x land 0xc0000000 = 0 then begin n := !n + 2; x := !x lsl 2 end;
    if !x land 0x80000000 = 0 then incr n;
    !n
  end

module Prefix = struct
  type addr = t

  (* Packed as [network lsl 6 lor length]: gives allocation-free values and
     a single-integer comparison for the (network, length) order. *)
  type t = int

  let mask l = if l = 0 then 0 else max_addr lxor ((1 lsl (32 - l)) - 1)

  let make a l =
    if l < 0 || l > bits then invalid_arg "Ipv4.Prefix.make: bad length";
    ((a land mask l) lsl 6) lor l

  let network p = p lsr 6
  let length p = p land 0x3f

  let parse masking s =
    match String.index_opt s '/' with
    | None -> Error (Printf.sprintf "invalid IPv4 prefix %S: missing '/'" s)
    | Some i ->
      let addr_s = String.sub s 0 i and len_s = String.sub s (i + 1) (String.length s - i - 1) in
      (match of_string addr_s with
       | Error e -> Error e
       | Ok a ->
         let l =
           if String.length len_s = 0 || String.length len_s > 2 then None
           else if String.exists (fun c -> c < '0' || c > '9') len_s then None
           else
             let v = int_of_string len_s in
             if v > bits then None else Some v
         in
         (match l with
          | None -> Error (Printf.sprintf "invalid IPv4 prefix %S: bad length" s)
          | Some l ->
            if (not masking) && a land mask l <> a then
              Error (Printf.sprintf "invalid IPv4 prefix %S: host bits set" s)
            else Ok (make a l)))

  let of_string s = parse false s
  let of_string_loose s = parse true s

  let of_string_exn s =
    match of_string s with Ok p -> p | Error e -> invalid_arg e

  let to_string p = Printf.sprintf "%s/%d" (to_string (network p)) (length p)
  let compare = Int.compare
  let equal = Int.equal
  let pp ppf p = Format.pp_print_string ppf (to_string p)
  let mem a p = a land mask (length p) = network p

  let subset sub sup =
    length sub >= length sup && network sub land mask (length sup) = network sup

  let strict_subset sub sup = length sub > length sup && subset sub sup
  let bit p i = bit (network p) i

  let truncate p l =
    if l < 0 || l > length p then invalid_arg "Ipv4.Prefix.truncate: bad length";
    make (network p) l

  let common_length p q =
    let lp = length p and lq = length q in
    let m = if lp < lq then lp else lq in
    let x = network p lxor network q in
    if x = 0 then m
    else
      let d = clz32 x in
      if d < m then d else m

  let split p =
    let l = length p in
    if l >= bits then None
    else
      let left = make (network p) (l + 1) in
      let right = make (network p lor (1 lsl (31 - l))) (l + 1) in
      Some (left, right)

  let parent p =
    let l = length p in
    if l = 0 then None else Some (make (network p) (l - 1))

  let sibling p =
    let l = length p in
    if l = 0 then None else Some (make (network p lxor (1 lsl (32 - l))) l)

  let first = network
  let last p = network p lor (max_addr land lnot (mask (length p)))

  let subprefixes p l =
    if l < length p || l > bits then invalid_arg "Ipv4.Prefix.subprefixes: bad length";
    let step = 1 lsl (32 - l) in
    let rec go a acc =
      if a > last p then List.rev acc else go (a + step) (make a l :: acc)
    in
    go (network p) []

  (* Greedy largest-aligned-block sweep: at [lo], the block size is
     bounded both by [lo]'s alignment and by the remaining range. *)
  let summarize lo hi =
    if lo > hi then invalid_arg "Ipv4.Prefix.summarize: empty range";
    let rec go lo acc =
      if lo > hi then List.rev acc
      else begin
        let align = if lo = 0 then bits else
          let rec tz n i = if n land 1 = 1 then i else tz (n lsr 1) (i + 1) in
          tz lo 0
        in
        let rec fit size_log =
          if size_log > 0 && (size_log > align || lo + (1 lsl size_log) - 1 > hi) then
            fit (size_log - 1)
          else size_log
        in
        let size_log = fit (min align 32) in
        go (lo + (1 lsl size_log)) (make lo (32 - size_log) :: acc)
      end
    in
    go lo []
end
