type t = { hi : int64; lo : int64 }

let bits = 128
let zero = { hi = 0L; lo = 0L }
let make hi lo = { hi; lo }
let high_bits a = a.hi
let low_bits a = a.lo

let of_groups g =
  if Array.length g <> 8 then invalid_arg "Ipv6.of_groups: need 8 groups";
  let half off =
    let v = ref 0L in
    for i = 0 to 3 do
      v := Int64.logor (Int64.shift_left !v 16) (Int64.of_int (g.(off + i) land 0xffff))
    done;
    !v
  in
  { hi = half 0; lo = half 4 }

let to_groups a =
  let g = Array.make 8 0 in
  for i = 0 to 3 do
    g.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical a.hi ((3 - i) * 16)) 0xffffL);
    g.(4 + i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical a.lo ((3 - i) * 16)) 0xffffL)
  done;
  g

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Split on ':' into raw tokens, then expand a single "::" gap. An
   embedded IPv4 tail ("::ffff:1.2.3.4") contributes two groups. *)
let of_string s =
  let err = Error (Printf.sprintf "invalid IPv6 address %S" s) in
  let n = String.length s in
  if n < 2 then err
  else begin
    (* Locate "::" if present. *)
    let dcolon = ref None in
    let i = ref 0 in
    (try
       while !i < n - 1 do
         if s.[!i] = ':' && s.[!i + 1] = ':' then begin
           if !dcolon <> None then raise Exit;
           dcolon := Some !i;
           i := !i + 2
         end
         else incr i
       done
     with Exit -> dcolon := Some (-1));
    if !dcolon = Some (-1) then err (* two "::" *)
    else begin
      let parse_side str =
        (* Parse a ':'-separated list of hex groups, possibly ending with a
           dotted quad. Returns the group list or None. *)
        if str = "" then Some []
        else
          let parts = String.split_on_char ':' str in
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | [ last ] when String.contains last '.' ->
              (match Ipv4.of_string last with
               | Ok v4 ->
                 let v = Ipv4.to_int v4 in
                 Some (List.rev ((v land 0xffff) :: ((v lsr 16) land 0xffff) :: acc))
               | Error _ -> None)
            | p :: rest ->
              let len = String.length p in
              if len = 0 || len > 4 then None
              else
                let rec hex i acc =
                  if i = len then Some acc
                  else
                    match hex_digit p.[i] with
                    | Some d -> hex (i + 1) ((acc lsl 4) lor d)
                    | None -> None
                in
                (match hex 0 0 with
                 | Some v -> go (v :: acc) rest
                 | None -> None)
          in
          go [] parts
      in
      match !dcolon with
      | Some pos ->
        let left = String.sub s 0 pos in
        let right = String.sub s (pos + 2) (n - pos - 2) in
        (match parse_side left, parse_side right with
         | Some l, Some r ->
           let gap = 8 - List.length l - List.length r in
           if gap < 1 then err
           else
             let groups = l @ List.init gap (fun _ -> 0) @ r in
             Ok (of_groups (Array.of_list groups))
         | _ -> err)
      | None ->
        (match parse_side s with
         | Some g when List.length g = 8 -> Ok (of_groups (Array.of_list g))
         | _ -> err)
    end
  end

let of_string_exn s =
  match of_string s with Ok a -> a | Error e -> invalid_arg e

(* RFC 5952: compress the longest run of >= 2 zero groups, leftmost wins. *)
let to_string a =
  let g = to_groups a in
  let best_start = ref (-1) and best_len = ref 0 in
  let cur_start = ref (-1) and cur_len = ref 0 in
  for i = 0 to 7 do
    if g.(i) = 0 then begin
      if !cur_start < 0 then cur_start := i;
      incr cur_len;
      if !cur_len > !best_len then begin
        best_len := !cur_len;
        best_start := !cur_start
      end
    end
    else begin
      cur_start := -1;
      cur_len := 0
    end
  done;
  let buf = Buffer.create 40 in
  if !best_len >= 2 then begin
    for i = 0 to !best_start - 1 do
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" g.(i))
    done;
    Buffer.add_string buf "::";
    for i = !best_start + !best_len to 7 do
      if i > !best_start + !best_len then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" g.(i))
    done
  end
  else
    for i = 0 to 7 do
      if i > 0 then Buffer.add_char buf ':';
      Buffer.add_string buf (Printf.sprintf "%x" g.(i))
    done;
  Buffer.contents buf

let compare a b =
  (* Unsigned comparison of the 128-bit value. *)
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo
let pp ppf a = Format.pp_print_string ppf (to_string a)

let bit a i =
  if i < 0 || i >= bits then invalid_arg "Ipv6.bit: index out of range";
  if i < 64 then Int64.logand (Int64.shift_right_logical a.hi (63 - i)) 1L = 1L
  else Int64.logand (Int64.shift_right_logical a.lo (127 - i)) 1L = 1L

let set_bit a i v =
  if i < 0 || i >= bits then invalid_arg "Ipv6.set_bit: index out of range";
  if i < 64 then
    let m = Int64.shift_left 1L (63 - i) in
    { a with hi = (if v then Int64.logor a.hi m else Int64.logand a.hi (Int64.lognot m)) }
  else
    let m = Int64.shift_left 1L (127 - i) in
    { a with lo = (if v then Int64.logor a.lo m else Int64.logand a.lo (Int64.lognot m)) }

(* Mask with the top [l] bits set. *)
let mask l =
  if l = 0 then zero
  else if l <= 64 then
    { hi = (if l = 64 then -1L else Int64.shift_left (-1L) (64 - l)); lo = 0L }
  else { hi = -1L; lo = (if l = 128 then -1L else Int64.shift_left (-1L) (128 - l)) }

(* Leading zeros of the 64-bit value, via the two 32-bit halves so the
   scan itself runs on immediate ints. *)
let clz64 x =
  let clz32 x =
    if x = 0 then 32
    else begin
      let n = ref 0 and x = ref x in
      if !x land 0xffff0000 = 0 then begin n := !n + 16; x := !x lsl 16 end;
      if !x land 0xff000000 = 0 then begin n := !n + 8; x := !x lsl 8 end;
      if !x land 0xf0000000 = 0 then begin n := !n + 4; x := !x lsl 4 end;
      if !x land 0xc0000000 = 0 then begin n := !n + 2; x := !x lsl 2 end;
      if !x land 0x80000000 = 0 then incr n;
      !n
    end
  in
  let hi = Int64.to_int (Int64.shift_right_logical x 32) in
  if hi <> 0 then clz32 hi
  else 32 + clz32 (Int64.to_int (Int64.logand x 0xffffffffL))

let logand a b = { hi = Int64.logand a.hi b.hi; lo = Int64.logand a.lo b.lo }
let logor a b = { hi = Int64.logor a.hi b.hi; lo = Int64.logor a.lo b.lo }
let lognot a = { hi = Int64.lognot a.hi; lo = Int64.lognot a.lo }

module Prefix = struct
  type addr = t

  let addr_equal = equal

  (* The enclosing module's unsigned 128-bit compare. Bound by name
     before [Prefix.compare] shadows [compare] below: prefix ordering
     MUST stay unsigned — polymorphic (or signed Int64) comparison
     would order high-bit-set addresses (8000::/1 and up) before low
     ones and silently corrupt every sorted-prefix invariant. *)
  let addr_compare = compare
  type nonrec t = { net : t; len : int }

  let make a l =
    if l < 0 || l > bits then invalid_arg "Ipv6.Prefix.make: bad length";
    { net = logand a (mask l); len = l }

  let network p = p.net
  let length p = p.len

  let parse masking s =
    match String.index_opt s '/' with
    | None -> Error (Printf.sprintf "invalid IPv6 prefix %S: missing '/'" s)
    | Some i ->
      let addr_s = String.sub s 0 i and len_s = String.sub s (i + 1) (String.length s - i - 1) in
      (match of_string addr_s with
       | Error e -> Error e
       | Ok a ->
         let l =
           if String.length len_s = 0 || String.length len_s > 3 then None
           else if String.exists (fun c -> c < '0' || c > '9') len_s then None
           else
             let v = int_of_string len_s in
             if v > bits then None else Some v
         in
         (match l with
          | None -> Error (Printf.sprintf "invalid IPv6 prefix %S: bad length" s)
          | Some l ->
            if (not masking) && not (equal (logand a (mask l)) a) then
              Error (Printf.sprintf "invalid IPv6 prefix %S: host bits set" s)
            else Ok (make a l)))

  let of_string s = parse false s
  let of_string_loose s = parse true s

  let of_string_exn s =
    match of_string s with Ok p -> p | Error e -> invalid_arg e

  let to_string p = Printf.sprintf "%s/%d" (to_string p.net) p.len

  let compare p q =
    let c = addr_compare p.net q.net in
    if c <> 0 then c else Int.compare p.len q.len

  let equal p q = addr_equal p.net q.net && Int.equal p.len q.len
  let pp ppf p = Format.pp_print_string ppf (to_string p)
  let mem a p = addr_equal (logand a (mask p.len)) p.net

  let subset sub sup =
    sub.len >= sup.len && addr_equal (logand sub.net (mask sup.len)) sup.net

  let strict_subset sub sup = sub.len > sup.len && subset sub sup
  let bit p i = bit p.net i

  let truncate p l =
    if l < 0 || l > p.len then invalid_arg "Ipv6.Prefix.truncate: bad length";
    make p.net l

  let common_length p q =
    let m = if p.len < q.len then p.len else q.len in
    let d =
      let xh = Int64.logxor p.net.hi q.net.hi in
      if Int64.equal xh 0L then begin
        let xl = Int64.logxor p.net.lo q.net.lo in
        if Int64.equal xl 0L then bits else 64 + clz64 xl
      end
      else clz64 xh
    in
    if d < m then d else m

  let split p =
    if p.len >= bits then None
    else
      let left = { net = p.net; len = p.len + 1 } in
      let right = { net = set_bit p.net p.len true; len = p.len + 1 } in
      Some (left, right)

  let parent p = if p.len = 0 then None else Some (make p.net (p.len - 1))

  let sibling p =
    if p.len = 0 then None
    else Some { net = set_bit p.net (p.len - 1) (not (bit p (p.len - 1))); len = p.len }

  let subprefixes p l =
    if l < p.len || l > bits then invalid_arg "Ipv6.Prefix.subprefixes: bad length";
    if l - p.len > 20 then invalid_arg "Ipv6.Prefix.subprefixes: enumeration too large";
    let rec go ps depth =
      if depth = 0 then ps
      else
        let expand acc q =
          match split q with
          | Some (a, b) -> b :: a :: acc
          | None -> acc
        in
        go (List.rev (List.fold_left expand [] ps)) (depth - 1)
    in
    go [ p ] (l - p.len)

  (* [last] address of a prefix, used by [mem]-style range logic if needed. *)
  let _last p = logor p.net (lognot (mask p.len))
end
