(** Address-family-independent IP prefixes.

    This is the type the rest of the project manipulates: ROA prefixes,
    VRPs, BGP NLRI and trie keys are all [Pfx.t]. Bit 0 of a prefix is
    the most significant bit of its network address. *)

type t =
  | V4 of Ipv4.Prefix.t
  | V6 of Ipv6.Prefix.t

type afi = Afi_v4 | Afi_v6
(** Address family indicator. *)

val afi : t -> afi

val afi_to_int : afi -> int
(** [Afi_v4 -> 0], [Afi_v6 -> 1]: a stable scalar encoding for hashing
    and packing. *)

val afi_equal : afi -> afi -> bool
val afi_compare : afi -> afi -> int

val addr_bits : t -> int
(** Width of the address space: 32 for IPv4, 128 for IPv6. Also the
    largest legal maxLength for a ROA on this prefix (RFC 6482). *)

val length : t -> int
(** Prefix length in bits. *)

val v4 : Ipv4.Prefix.t -> t
val v6 : Ipv6.Prefix.t -> t

val of_string : string -> (t, string) result
(** Parse either family; a ':' anywhere in the string selects IPv6. *)

val of_string_exn : string -> t
val to_string : t -> string

val compare : t -> t -> int
(** Total order: all IPv4 prefixes before all IPv6, then by network
    address, then by length. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val subset : t -> t -> bool
(** [subset sub sup]: [sup] covers [sub] (same family, [sup] shorter or
    equal, network bits agree). Reflexive. *)

val strict_subset : t -> t -> bool

val bit : t -> int -> bool
(** [bit p i] for [0 <= i < length p]. *)

val common_length : t -> t -> int
(** Length of the longest common prefix of the two arguments, capped at
    the shorter of their lengths. Allocation-free: the branch-point
    primitive of the path-compressed trie.
    @raise Invalid_argument when the families differ. *)

val truncate : t -> int -> t
(** [truncate p l] is the length-[l] covering prefix of [p].
    @raise Invalid_argument unless [0 <= l <= length p]. *)

val split : t -> (t * t) option
(** Both one-bit-longer children, or [None] at the host-route limit. *)

val parent : t -> t option
val sibling : t -> t option

val is_left_child : t -> bool
(** [is_left_child p] is true when [p]'s last bit is 0, i.e. [p] is the
    low half of its parent. /0 prefixes are conventionally left. *)

val subprefixes : t -> int -> t list
(** All subprefixes of exactly the given length (bounded enumeration;
    see {!Ipv6.Prefix.subprefixes} for limits). *)

val aggregate : t list -> t list
(** Route aggregation (RIPE-399 §3): the minimal prefix list covering
    exactly the same address space — contained prefixes are absorbed
    and complete sibling pairs merge into their parent, recursively.
    Works across mixed families; output is in canonical order. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
