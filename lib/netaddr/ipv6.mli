(** IPv6 addresses and prefixes.

    Addresses are 128-bit values held as two [int64] halves. Bit 0 is the
    most significant bit, matching the prefix-trie convention. Printing
    follows RFC 5952 (lowercase hex, longest run of two or more zero
    groups compressed, leftmost run on tie). *)

type t

val bits : int
(** Number of bits in an IPv6 address (128). *)

val zero : t

val make : int64 -> int64 -> t
(** [make hi lo] assembles an address from its high and low 64 bits. *)

val high_bits : t -> int64
val low_bits : t -> int64

val of_groups : int array -> t
(** [of_groups g] builds an address from eight 16-bit groups, most
    significant first. @raise Invalid_argument unless [Array.length g = 8]. *)

val to_groups : t -> int array

val of_string : string -> (t, string) result
(** Parse RFC 4291 textual forms: full eight-group notation, [::]
    compression, and an optional embedded dotted-quad IPv4 tail. *)

val of_string_exn : string -> t
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], 0 being the most significant.
    @raise Invalid_argument if [i] is outside [0, 127]. *)

val set_bit : t -> int -> bool -> t

module Prefix : sig
  type addr = t

  type t
  (** An IPv6 prefix with canonical (host-bits-zero) network address. *)

  val make : addr -> int -> t
  val network : t -> addr
  val length : t -> int

  val of_string : string -> (t, string) result
  val of_string_loose : string -> (t, string) result
  val of_string_exn : string -> t
  val to_string : t -> string

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val mem : addr -> t -> bool
  val subset : t -> t -> bool
  val strict_subset : t -> t -> bool
  val bit : t -> int -> bool

  val truncate : t -> int -> t
  (** [truncate p l] is the length-[l] covering prefix of [p].
      @raise Invalid_argument unless [0 <= l <= length p]. *)

  val common_length : t -> t -> int
  (** Length of the longest common prefix of [p] and [q], capped at
      [min (length p) (length q)]. See {!Ipv4.Prefix.common_length}. *)

  val split : t -> (t * t) option
  val parent : t -> t option
  val sibling : t -> t option

  val subprefixes : t -> int -> t list
  (** [subprefixes p l] enumerates subprefixes of [p] of length exactly
      [l]. @raise Invalid_argument if [l < length p], [l > 128], or the
      enumeration would exceed 2^20 prefixes. *)
end
