(** IPv4 addresses and prefixes.

    Addresses are 32-bit unsigned values held in a native [int] (OCaml ints
    are at least 63 bits wide on every supported platform). Bit 0 is the
    most significant bit of the address, matching the prefix-trie
    convention used throughout this project. *)

type t
(** An IPv4 address. *)

val bits : int
(** Number of bits in an IPv4 address (32). *)

val zero : t

val of_int32_bits : int -> t
(** [of_int32_bits n] interprets the low 32 bits of [n] as an address. *)

val to_int : t -> int
(** [to_int a] is the address as an unsigned integer in [0, 2^32). *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Each octet is masked to
    its low 8 bits. *)

val to_octets : t -> int * int * int * int

val of_string : string -> (t, string) result
(** Parse dotted-quad notation. Rejects out-of-range octets, empty
    components and trailing garbage. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on parse error. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a], where bit 0 is the most significant.
    @raise Invalid_argument if [i] is outside [0, 31]. *)

val set_bit : t -> int -> bool -> t
(** [set_bit a i v] is [a] with bit [i] (0 = most significant) set to [v]. *)

val succ : t -> t
(** Next address, wrapping at the top of the address space. *)

module Prefix : sig
  type addr = t

  type t
  (** An IPv4 prefix: a network address and a length in [0, 32]. The
      network address is always canonical (host bits zero). *)

  val make : addr -> int -> t
  (** [make a l] is the prefix [a/l] with host bits of [a] masked off.
      @raise Invalid_argument if [l] is outside [0, 32]. *)

  val network : t -> addr
  val length : t -> int

  val of_string : string -> (t, string) result
  (** Parse ["a.b.c.d/l"] notation. The address must be in canonical form
      (no host bits set beyond the prefix length). *)

  val of_string_loose : string -> (t, string) result
  (** Like {!of_string} but masks host bits instead of rejecting them. *)

  val of_string_exn : string -> t
  val to_string : t -> string

  val compare : t -> t -> int
  (** Total order: by network address, then by length (shorter first). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val mem : addr -> t -> bool
  (** [mem a p] is [true] when address [a] lies inside [p]. *)

  val subset : t -> t -> bool
  (** [subset sub sup] is [true] when every address of [sub] is in [sup],
      i.e. [sup] covers [sub]. A prefix is a subset of itself. *)

  val strict_subset : t -> t -> bool

  val bit : t -> int -> bool
  (** [bit p i] is bit [i] of the network address; only bits
      [0, length p - 1] are meaningful. *)

  val truncate : t -> int -> t
  (** [truncate p l] is the length-[l] prefix of [p]'s network address —
      the covering prefix [l] bits long.
      @raise Invalid_argument unless [0 <= l <= length p]. *)

  val common_length : t -> t -> int
  (** [common_length p q] is the length of the longest common prefix of
      [p] and [q]: the number of leading network bits they agree on,
      capped at [min (length p) (length q)]. Allocation-free; this is
      the branch-point primitive of the path-compressed trie. *)

  val split : t -> (t * t) option
  (** [split p] is the two half-length-[+1] children of [p], or [None]
      when [p] is a host route (/32). *)

  val parent : t -> t option
  (** The covering prefix one bit shorter, or [None] for 0.0.0.0/0. *)

  val sibling : t -> t option
  (** The other child of [parent p], or [None] for 0.0.0.0/0. *)

  val first : t -> addr
  val last : t -> addr

  val subprefixes : t -> int -> t list
  (** [subprefixes p l] enumerates all subprefixes of [p] of length
      exactly [l], in address order.
      @raise Invalid_argument if [l < length p] or [l > 32]. *)

  val summarize : addr -> addr -> t list
  (** [summarize lo hi] is the minimal list of prefixes that covers
      exactly the inclusive address range [lo, hi], in address order —
      the classic range-to-CIDR conversion.
      @raise Invalid_argument when [lo > hi]. *)
end
