type t =
  | V4 of Ipv4.Prefix.t
  | V6 of Ipv6.Prefix.t

type afi = Afi_v4 | Afi_v6

let afi = function V4 _ -> Afi_v4 | V6 _ -> Afi_v6
let afi_to_int = function Afi_v4 -> 0 | Afi_v6 -> 1
let afi_equal a b = Int.equal (afi_to_int a) (afi_to_int b)
let afi_compare a b = Int.compare (afi_to_int a) (afi_to_int b)
let addr_bits = function V4 _ -> Ipv4.bits | V6 _ -> Ipv6.bits
let length = function V4 p -> Ipv4.Prefix.length p | V6 p -> Ipv6.Prefix.length p
let v4 p = V4 p
let v6 p = V6 p

let of_string s =
  if String.contains s ':' then Result.map v6 (Ipv6.Prefix.of_string s)
  else Result.map v4 (Ipv4.Prefix.of_string s)

let of_string_exn s =
  match of_string s with Ok p -> p | Error e -> invalid_arg e

let to_string = function
  | V4 p -> Ipv4.Prefix.to_string p
  | V6 p -> Ipv6.Prefix.to_string p

let compare a b =
  match a, b with
  | V4 p, V4 q -> Ipv4.Prefix.compare p q
  | V6 p, V6 q -> Ipv6.Prefix.compare p q
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1

let equal a b = compare a b = 0

(* Hash the packed integer forms directly — no per-call tuple (this
   sits on the Validation/Bgp_table hot path). The V4 payload is
   already (network lsl 6) lor length, a single immediate int; V6 mixes
   its three ints FNV-1a style. *)
let hash = function
  (* The V4 payload is packed into one immediate int, so Hashtbl.hash
     sees no abstract structure here — it is just an int scrambler
     (and its values are load-bearing for bucket order downstream). *)
  | V4 p ->
    (Hashtbl.hash [@lint.poly_ok])
      ((Ipv4.to_int (Ipv4.Prefix.network p) lsl 6) lor Ipv4.Prefix.length p)
  | V6 p ->
    let n = Ipv6.Prefix.network p in
    let h = 0x9e3779b1 in
    let h = (h lxor Int64.to_int (Ipv6.high_bits n)) * 0x01000193 in
    let h = (h lxor Int64.to_int (Ipv6.low_bits n)) * 0x01000193 in
    let h = (h lxor Ipv6.Prefix.length p) * 0x01000193 in
    h land max_int

let pp ppf p = Format.pp_print_string ppf (to_string p)

let subset sub sup =
  match sub, sup with
  | V4 p, V4 q -> Ipv4.Prefix.subset p q
  | V6 p, V6 q -> Ipv6.Prefix.subset p q
  | V4 _, V6 _ | V6 _, V4 _ -> false

let strict_subset sub sup =
  match sub, sup with
  | V4 p, V4 q -> Ipv4.Prefix.strict_subset p q
  | V6 p, V6 q -> Ipv6.Prefix.strict_subset p q
  | V4 _, V6 _ | V6 _, V4 _ -> false

let bit p i =
  match p with V4 q -> Ipv4.Prefix.bit q i | V6 q -> Ipv6.Prefix.bit q i

let common_length a b =
  match a, b with
  | V4 p, V4 q -> Ipv4.Prefix.common_length p q
  | V6 p, V6 q -> Ipv6.Prefix.common_length p q
  | V4 _, V6 _ | V6 _, V4 _ -> invalid_arg "Pfx.common_length: address family mismatch"

let truncate p l =
  match p with
  | V4 q -> V4 (Ipv4.Prefix.truncate q l)
  | V6 q -> V6 (Ipv6.Prefix.truncate q l)

let split = function
  | V4 p -> Option.map (fun (a, b) -> (V4 a, V4 b)) (Ipv4.Prefix.split p)
  | V6 p -> Option.map (fun (a, b) -> (V6 a, V6 b)) (Ipv6.Prefix.split p)

let parent = function
  | V4 p -> Option.map v4 (Ipv4.Prefix.parent p)
  | V6 p -> Option.map v6 (Ipv6.Prefix.parent p)

let sibling = function
  | V4 p -> Option.map v4 (Ipv4.Prefix.sibling p)
  | V6 p -> Option.map v6 (Ipv6.Prefix.sibling p)

let is_left_child p =
  let l = length p in
  l = 0 || not (bit p (l - 1))

let subprefixes p l =
  match p with
  | V4 q ->
    if l - Ipv4.Prefix.length q > 20 then
      invalid_arg "Pfx.subprefixes: enumeration too large"
    else List.map v4 (Ipv4.Prefix.subprefixes q l)
  | V6 q -> List.map v6 (Ipv6.Prefix.subprefixes q l)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)

(* Aggregation: absorb covered prefixes with one sorted sweep, then
   merge complete sibling pairs bottom-up until nothing merges. *)
let aggregate prefixes =
  let drop_covered sorted =
    List.fold_left
      (fun acc q ->
        match acc with
        | keeper :: _ when subset q keeper -> acc
        | _ -> q :: acc)
      [] sorted
    |> List.rev
  in
  (* Worklist sweep: every prefix is examined once, and each merge
     enqueues only the freshly created parent (the one element that can
     enable a new merge). Sibling merges are confluent — the input is an
     antichain after [drop_covered], a merge consumes exactly its two
     halves and produces their parent, so the fixpoint is unique and
     this linear sweep lands on the same set the old
     rescan-from-scratch pass did, in O(n log n) instead of O(n^2). *)
  let merge_sweep init =
    let queue = Queue.create () in
    Set.iter (fun q -> Queue.add q queue) init;
    let set = ref init in
    while not (Queue.is_empty queue) do
      let q = Queue.take queue in
      if length q > 0 && Set.mem q !set then
        match sibling q, parent q with
        | Some sib, Some par when Set.mem sib !set ->
          set := Set.add par (Set.remove q (Set.remove sib !set));
          Queue.add par queue
        | _ -> ()
    done;
    !set
  in
  (* [Ord.compare] is this module's own compare — spelled with the
     qualified name so the unsigned IPv6 ordering is explicit rather
     than inherited through shadowing (see ipv6.ml's addr_compare). *)
  let deduped = drop_covered (List.sort_uniq Ord.compare prefixes) in
  Set.elements (merge_sweep (Set.of_list deduped))
