(* Command-line frontend: regenerate each of the paper's experiments
   and run the compress_roas pipeline on VRP CSV files. *)

open Cmdliner

let scale_arg =
  let doc = "Dataset scale relative to the paper's 2017-06-01 snapshot (1.0 = 776,945 pairs)." in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed_arg =
  let doc = "PRNG seed; every output is deterministic in it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let domains_arg =
  let doc =
    "Domains (OS-level threads) for the parallel pipelines; $(b,1) forces the exact \
     sequential path. Defaults to the $(b,RPKI_DOMAINS) environment variable, else the \
     recommended domain count. Output is bit-identical at every value."
  in
  Arg.(value & opt (some int) None & info [ "domains"; "j" ] ~docv:"N" ~doc)

let mode_arg =
  let doc =
    "Compression merge rule: $(b,strict) (lossless, default) or $(b,paper) (Algorithm 1 \
     verbatim, can over-authorize; see EXPERIMENTS.md)."
  in
  let modes = Arg.enum [ ("strict", Mlcore.Compress.Strict); ("paper", Mlcore.Compress.Paper) ] in
  Arg.(value & opt modes Mlcore.Compress.Strict & info [ "mode" ] ~doc)

let snapshot scale seed =
  Dataset.Snapshot.generate ~params:(Dataset.Snapshot.scaled scale) ~seed ()

let measure_cmd =
  let run scale seed domains =
    let stats = Mlcore.Analysis.measure ?domains (snapshot scale seed) in
    print_endline (Mlcore.Report.render_stats stats)
  in
  Cmd.v
    (Cmd.info "measure" ~doc:"Reproduce the section-6 measurements on a synthetic snapshot.")
    Term.(const run $ scale_arg $ seed_arg $ domains_arg)

let table1_cmd =
  let run scale seed mode domains =
    Mlcore.Scenario.compression_mode := mode;
    let rows = Mlcore.Scenario.table1 ?domains (snapshot scale seed) in
    print_string (Mlcore.Report.render_table1 ~scale rows)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (PDU counts for the seven scenarios).")
    Term.(const run $ scale_arg $ seed_arg $ mode_arg $ domains_arg)

let figure3_cmd =
  let panel_arg =
    let doc = "Which panel: $(b,a) (today's deployment) or $(b,b) (full deployment)." in
    Arg.(value & opt (enum [ ("a", `A); ("b", `B) ]) `A & info [ "panel" ] ~doc)
  in
  let csv_arg =
    let doc = "Emit CSV instead of an aligned table." in
    Arg.(value & flag & info [ "csv" ] ~doc)
  in
  let run scale seed mode panel csv domains =
    Mlcore.Scenario.compression_mode := mode;
    let weeks =
      Dataset.Timeline.generate ~params:(Dataset.Snapshot.scaled scale) ?domains ~seed ()
    in
    let title, series =
      match panel with
      | `A -> ("Figure 3a: today's RPKI deployment", Mlcore.Scenario.figure3a weeks)
      | `B -> ("Figure 3b: RPKI in full deployment", Mlcore.Scenario.figure3b weeks)
    in
    if csv then print_string (Mlcore.Report.csv_of_series series)
    else print_string (Mlcore.Report.render_series ~title series)
  in
  Cmd.v
    (Cmd.info "figure3" ~doc:"Reproduce Figure 3 (PDU counts along the weekly timeline).")
    Term.(const run $ scale_arg $ seed_arg $ mode_arg $ panel_arg $ csv_arg $ domains_arg)

let compress_cmd =
  let input_arg =
    let doc = "VRP CSV file (prefix,maxLength,asn per line); - for stdin." in
    Arg.(value & opt string "-" & info [ "input"; "i" ] ~docv:"FILE" ~doc)
  in
  let run mode input domains =
    let contents =
      if input = "-" then In_channel.input_all stdin
      else In_channel.with_open_text input In_channel.input_all
    in
    match Rpki.Scan_roas.of_csv contents with
    | Error e ->
      prerr_endline ("error: " ^ e);
      exit 1
    | Ok vrps ->
      let compressed = Mlcore.Compress.run ~mode ?domains vrps in
      print_string (Rpki.Scan_roas.to_csv compressed);
      Printf.eprintf "compressed %d -> %d tuples (%.2f%%)\n" (List.length vrps)
        (List.length compressed)
        (100.0
        *. Mlcore.Compress.compression_ratio ~before:(List.length vrps)
             ~after:(List.length compressed))
  in
  Cmd.v
    (Cmd.info "compress"
       ~doc:"Run compress_roas on a VRP CSV (drop-in for the scan_roas output format).")
    Term.(const run $ mode_arg $ input_arg $ domains_arg)

let hijack_cmd =
  let ases_arg =
    let doc = "Number of ASes in the synthetic topology." in
    Arg.(value & opt int 1000 & info [ "ases" ] ~docv:"N" ~doc)
  in
  let rov_arg =
    let doc = "Fraction of ASes performing route-origin validation (drop invalid)." in
    Arg.(value & opt float 1.0 & info [ "rov" ] ~docv:"FRACTION" ~doc)
  in
  let trials_arg =
    let doc = "Number of random victim/attacker pairs to average over." in
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let run seed n_as rov trials =
    let results = Experiments.Hijack_eval.hijack_table ~seed ~n_as ~rov ~trials in
    print_string results
  in
  Cmd.v
    (Cmd.info "hijack"
       ~doc:"Reproduce the section-4/5 attack comparison on a synthetic AS topology.")
    Term.(const run $ seed_arg $ ases_arg $ rov_arg $ trials_arg)

let audit_cmd =
  let top_arg =
    let doc = "Show only the $(docv) worst ROAs." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run scale seed top =
    let snap = snapshot scale seed in
    let reports =
      Mlcore.Advisor.audit snap.Dataset.Snapshot.table snap.Dataset.Snapshot.roas
    in
    Printf.printf "%d of %d ROAs need attention; worst %d:\n\n" (List.length reports)
      (List.length snap.Dataset.Snapshot.roas) (min top (List.length reports));
    List.iteri
      (fun i (report, suggestion) ->
        if i < top then begin
          Format.printf "%a@." Mlcore.Advisor.pp_report report;
          (match suggestion with
           | Some minimal -> Format.printf "  suggested replacement: %a@.@." Rpki.Roa.pp minimal
           | None -> Format.printf "  suggested action: revoke (nothing it authorizes is announced)@.@.")
        end)
      reports
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Review a ROA corpus against BGP, as the paper's section-8 recommendation would \
          have RIR portals do: flag vulnerable maxLength use and suggest minimal ROAs.")
    Term.(const run $ scale_arg $ seed_arg $ top_arg)

let generate_cmd =
  let run scale seed =
    let snap = snapshot scale seed in
    print_string (Rpki.Scan_roas.to_csv (Dataset.Snapshot.vrps snap))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic snapshot and dump its VRPs as CSV.")
    Term.(const run $ scale_arg $ seed_arg)

let () =
  let info =
    Cmd.info "rpki_maxlen" ~version:"1.0.0"
      ~doc:"Reproduction toolkit for 'MaxLength Considered Harmful to the RPKI' (CoNEXT'17)."
  in
  exit (Cmd.eval (Cmd.group info [ measure_cmd; table1_cmd; figure3_cmd; compress_cmd; hijack_cmd; audit_cmd; generate_cmd ]))
