(* rpki-maxlen lint — AST-level enforcement of the repo's correctness
   invariants (DESIGN.md §9), plus an interprocedural typed phase over
   dune's .cmt artifacts.

   Usage: lint [PATHS...] [--rules R1,R3] [--typed] [--cmt-dir DIR]
               [--format text|json|sarif] [--out FILE] [--baseline FILE]
               [--root DIR] [--list-rules]

   Exit status: 0 when no error-severity finding survives baseline
   filtering, 1 otherwise, 2 on usage errors. A missing build dir with
   --typed degrades to the syntactic rules plus a stderr warning — it
   is not a failure. *)

module Engine = Lintcore.Engine
module Rules = Lintcore.Rules

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let usage =
  "lint [PATHS...] [options]\n\
   Static analysis for the rpki-maxlen tree. With no PATHS, lints lib/ bin/ bench/ \
   test/ under --root (default: the current directory).\n\n\
   The syntactic rules (R1-R7) parse sources directly. The typed rules (R8-R13) \
   need .cmt artifacts from a prior `dune build` and run with --typed (implied \
   when --rules selects a typed rule).\n\n\
   Options:"

let () =
  let paths = ref [] in
  let rules_arg = ref "" in
  let typed = ref false in
  let cmt_dir = ref "" in
  let format = ref "text" in
  let out = ref "" in
  let baseline = ref "" in
  let root = ref (Sys.getcwd ()) in
  let list_rules = ref false in
  let spec =
    [ ( "--rules",
        Arg.Set_string rules_arg,
        "IDS  comma-separated rule ids to run (default: all, e.g. R1,R3)" );
      ( "--typed",
        Arg.Set typed,
        " enable the typed phase (R8-R13) over _build .cmt artifacts" );
      ( "--cmt-dir",
        Arg.Set_string cmt_dir,
        "DIR  where to look for .cmt files (default: ROOT/_build/default)" );
      ( "--format",
        Arg.Set_string format,
        "FMT  output format: text (default), json, or sarif (2.1.0)" );
      ("--out", Arg.Set_string out, "FILE  write the report to FILE instead of stdout");
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE  previous JSON report (v1 or v2); findings fingerprinted there are \
         suppressed" );
      ("--root", Arg.Set_string root, "DIR  tree root paths are resolved against");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit") ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with Arg.Bad msg ->
     prerr_string msg;
     exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        let phase =
          match r.kind with Rules.Typed_rule _ -> "typed" | _ -> "syntactic"
        in
        Printf.printf "%s %-22s [%s, %s]\n    %s\n" r.id r.name
          (Lintcore.Finding.severity_to_string r.severity)
          phase r.doc)
      Rules.all;
    exit 0
  end;
  let rules =
    if String.equal !rules_arg "" then Rules.all
    else begin
      let ids = String.split_on_char ',' !rules_arg |> List.map String.trim in
      let known = Rules.ids () in
      List.iter
        (fun id ->
          if not (List.exists (String.equal id) known) then begin
            Printf.eprintf "lint: unknown rule %S (known: %s)\n" id
              (String.concat ", " known);
            exit 2
          end)
        ids;
      Rules.find ids
    end
  in
  (* asking for a typed rule by id is asking for the typed phase *)
  let typed =
    !typed
    || List.exists
         (fun (r : Rules.t) ->
           match r.kind with Rules.Typed_rule _ -> not (String.equal !rules_arg "") | _ -> false)
         rules
  in
  let paths = if !paths = [] then default_paths else List.rev !paths in
  let cmt_dir = if String.equal !cmt_dir "" then None else Some !cmt_dir in
  let report = Engine.run ~rules ~typed ?cmt_dir ~root:!root paths in
  (match report.typed_warning with
  | Some w -> Printf.eprintf "lint: warning: %s; ran the syntactic rules only\n" w
  | None -> ());
  let report =
    if String.equal !baseline "" then report
    else if not (Sys.file_exists !baseline) then begin
      Printf.eprintf "lint: baseline file not found: %s\n" !baseline;
      exit 2
    end
    else Engine.apply_baseline ~baseline:(Engine.load_baseline !baseline) report
  in
  let rendered =
    match !format with
    | "text" -> Engine.to_text report
    | "json" -> Engine.to_json report
    | "sarif" -> Engine.to_sarif report
    | f ->
      Printf.eprintf "lint: unknown format %S (expected text, json, or sarif)\n" f;
      exit 2
  in
  (if String.equal !out "" then print_string rendered
   else begin
     let oc = open_out !out in
     Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
         output_string oc rendered)
   end);
  exit (if Engine.has_errors report then 1 else 0)
