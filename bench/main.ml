(* The benchmark & reproduction harness: regenerates every table and
   figure of the paper (printing paper-vs-measured), then times the
   compress_roas pipeline — sequential vs parallel per domain count,
   emitted as BENCH_compress.json — and its substrates with Bechamel.

   Environment knobs:
     BENCH_SCALE   dataset scale for Table 1 / section 6 (default 1.0,
                   the paper's 776,945-pair snapshot)
     FIG3_SCALE    dataset scale for the 8-week Figure 3 series
                   (default 0.25 to keep the run minutes-long)
     BENCH_SEED    PRNG seed (default 42)
     RPKI_DOMAINS  domain count for the parallel pipelines (default
                   Domain.recommended_domain_count; 1 = sequential)
     BENCH_ONLY    comma-separated subset of sections to run, among
                   section6, audit, table1, figure3, attack, compress,
                   validate, arena, rtr, fanout, churn, ablation, micro
                   (default: all)
     BENCH_JSON    output path for the machine-readable compression
                   benchmark (default BENCH_compress.json)
     BENCH_VALIDATE_JSON
                   output path for the machine-readable validation
                   benchmark (default BENCH_validate.json)
     BENCH_RTR_SEEDS
                   seeds per fault policy for the RTR fault-injection
                   sweep (default 50)
     BENCH_RTR_JSON
                   output path for the machine-readable RTR sweep
                   (default BENCH_rtr.json)
     BENCH_FANOUT_SESSIONS
                   comma-separated session counts for the encode-once
                   fan-out scale bench (default 1000,10000,100000)
     BENCH_FANOUT_JSON
                   output path for the machine-readable fan-out bench
                   (default BENCH_rtr_fanout.json)
     BENCH_ARENA_REPEATS
                   timed repetitions per arena-vs-record workload; the
                   minimum wall is kept on both sides (default 3)
     BENCH_ARENA_JSON
                   output path for the machine-readable arena-vs-record
                   comparison (default BENCH_arena.json)
     BENCH_CHURN_SCALE
                   dataset scale for the live-churn timeline replay
                   (default 0.05)
     BENCH_CHURN_ROUTERS
                   router sessions for the live-churn RTR fan-out run
                   (default 50)
     BENCH_CHURN_JSON
                   output path for the machine-readable live-churn
                   benchmark (default BENCH_churn.json) *)

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with Failure _ -> default)
  | None -> default

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string s with Failure _ -> default)
  | None -> default

let scale = getenv_float "BENCH_SCALE" 1.0
let fig3_scale = getenv_float "FIG3_SCALE" 0.25
let seed = getenv_int "BENCH_SEED" 42
let domains = Parallel.Pool.default_domains ()

let json_path =
  match Sys.getenv_opt "BENCH_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_compress.json"

let validate_json_path =
  match Sys.getenv_opt "BENCH_VALIDATE_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_validate.json"

let rtr_seeds = getenv_int "BENCH_RTR_SEEDS" 50

let rtr_json_path =
  match Sys.getenv_opt "BENCH_RTR_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_rtr.json"

let fanout_sessions =
  match Sys.getenv_opt "BENCH_FANOUT_SESSIONS" with
  | Some s when String.trim s <> "" ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
    |> List.filter (fun n -> n > 0)
  | Some _ | None -> [ 1_000; 10_000; 100_000 ]

let fanout_json_path =
  match Sys.getenv_opt "BENCH_FANOUT_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_rtr_fanout.json"

let arena_repeats = max 1 (getenv_int "BENCH_ARENA_REPEATS" 3)
let churn_scale = getenv_float "BENCH_CHURN_SCALE" 0.05
let churn_routers = max 1 (getenv_int "BENCH_CHURN_ROUTERS" 50)

let churn_json_path =
  match Sys.getenv_opt "BENCH_CHURN_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_churn.json"

let arena_json_path =
  match Sys.getenv_opt "BENCH_ARENA_JSON" with
  | Some p when p <> "" -> p
  | Some _ | None -> "BENCH_arena.json"

let only_sections =
  match Sys.getenv_opt "BENCH_ONLY" with
  | None | Some "" -> None
  | Some s ->
    Some (String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) ""))

let section_enabled name =
  match only_sections with
  | None -> true
  | Some names -> List.exists (String.equal name) names

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- paper-vs-measured sections --- *)

let section6 snap =
  banner "Section 6: measurements (paper values are for 2017-06-01 at scale 1.0)";
  let s = Mlcore.Analysis.measure snap in
  print_endline (Mlcore.Report.render_stats s);
  Printf.printf
    "\n\
     \  paper: 12%% of ROA prefixes use maxLength          measured: %.1f%%\n\
     \  paper: 84%% of those are vulnerable (non-minimal)  measured: %.1f%%\n\
     \  paper: +13K prefixes / +33%% PDUs to go minimal    measured: +%d / +%.1f%%\n\
     \  paper: full-deployment compression bound 6.2%%     measured: %.1f%%\n"
    (100.0 *. Mlcore.Analysis.maxlen_usage_fraction s)
    (100.0 *. Mlcore.Analysis.vulnerable_fraction s)
    s.Mlcore.Analysis.additional_prefixes
    (100.0 *. Mlcore.Analysis.pdu_increase_fraction s)
    (100.0 *. s.Mlcore.Analysis.max_compression)

let audit snap =
  banner "Section 8: corpus audit (what an RIR portal should tell its users)";
  let stats =
    Mlcore.Advisor.corpus_stats snap.Dataset.Snapshot.table snap.Dataset.Snapshot.roas
  in
  Format.printf "  %a@." Mlcore.Advisor.pp_corpus_stats stats

let table1 snap =
  banner (Printf.sprintf "Table 1: # PDUs processed by routers (scale %.3f)" scale);
  let rows = Mlcore.Scenario.table1 snap in
  print_string (Mlcore.Report.render_table1 ~scale rows);
  let pdus label =
    match List.find_opt (fun (r : Mlcore.Scenario.row) -> r.Mlcore.Scenario.label = label) rows with
    | Some r -> Some r.Mlcore.Scenario.pdus
    | None -> None
  in
  (match pdus "Today", pdus "Today (compressed)" with
   | Some before, Some after ->
     Printf.printf "  status-quo compression: %.2f%% (paper: 15.90%%)\n"
       (100.0 *. Mlcore.Compress.compression_ratio ~before ~after)
   | _ -> ());
  (match
     pdus "Today, minimal ROAs, no maxLength", pdus "Today, minimal ROAs, with maxLength (compressed)"
   with
   | Some before, Some after ->
     Printf.printf "  hardened compression:   %.2f%% (paper: 6.5%%)\n"
       (100.0 *. Mlcore.Compress.compression_ratio ~before ~after)
   | _ -> ())

let figure3 () =
  let weeks = Dataset.Timeline.generate ~params:(Dataset.Snapshot.scaled fig3_scale) ~seed () in
  banner (Printf.sprintf "Figure 3a: today's RPKI deployment (scale %.3f)" fig3_scale);
  print_string
    (Mlcore.Report.render_series ~title:"Number of PDUs per weekly snapshot"
       (Mlcore.Scenario.figure3a weeks));
  banner (Printf.sprintf "Figure 3b: RPKI in full deployment (scale %.3f)" fig3_scale);
  print_string
    (Mlcore.Report.render_series ~title:"Number of PDUs per weekly snapshot"
       (Mlcore.Scenario.figure3b weeks))

let attack_eval () =
  banner "Sections 4-5: attack evaluation (1000-AS synthetic topology)";
  print_string (Experiments.Hijack_eval.hijack_table ~seed ~n_as:1000 ~rov:1.0 ~trials:10);
  print_newline ();
  print_string (Experiments.Hijack_eval.aspa_comparison ~seed ~n_as:1000 ~trials:10);
  print_newline ();
  print_string
    (Experiments.Hijack_eval.render_rov_sweep
       (Experiments.Hijack_eval.rov_sweep ~seed ~n_as:1000 ~trials:10
          ~fractions:[ 0.0; 0.25; 0.5; 0.75; 1.0 ]));
  print_newline ();
  print_endline
    "  paper claims reproduced: the forged-origin subprefix hijack on a\n\
     \  non-minimal ROA is Valid and captures ~100%; on a minimal ROA it is\n\
     \  Invalid and captures 0%; the traditional forged-origin fallback splits\n\
     \  traffic with the majority staying on the legitimate route."

(* Section 7.2-style wall-clock + allocation measurement, extended
   with the sequential-vs-parallel comparison and a machine-readable
   trajectory file (BENCH_compress.json) that later PRs regress
   against. The paper reports 2.4 s / 19 MB today-scale and 36 s /
   290 MB full-scale on an i7-6700; absolute numbers differ by machine
   and implementation, the scaling shape is the claim. *)

type domain_run = { d_domains : int; d_wall : float; d_identical : bool }

type compress_result = {
  c_name : string;
  c_in : int;
  c_out : int;
  c_pct : float; (* compression, percent *)
  c_seq_wall : float;
  c_runs : domain_run list;
}

let parallel_domain_counts =
  (* Always probe 2 and 4 (the acceptance axis), plus whatever
     RPKI_DOMAINS asks for. *)
  List.sort_uniq Int.compare (List.filter (fun d -> d > 1) [ 2; 4; domains ])

let bench_compress_dataset (name, vrps) =
  let bytes_before = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let seq_out, stats = Mlcore.Compress.run_with_stats ~domains:1 vrps in
  let seq_wall = Unix.gettimeofday () -. t0 in
  let mb = (Gc.allocated_bytes () -. bytes_before) /. 1_048_576.0 in
  Printf.printf "  %-24s %8d -> %8d tuples   seq %7.2f s wall   %8.1f MB allocated\n" name
    stats.Mlcore.Compress.input stats.Mlcore.Compress.output seq_wall mb;
  Format.printf "  %-24s (%a)@." "" Mlcore.Compress.pp_stats stats;
  let runs =
    List.map
      (fun d ->
        let t0 = Unix.gettimeofday () in
        let out, _ = Mlcore.Compress.run_with_stats ~domains:d vrps in
        let wall = Unix.gettimeofday () -. t0 in
        let identical = List.equal Rpki.Vrp.equal out seq_out in
        Printf.printf "  %-24s %d domains: %7.2f s wall   speedup %5.2fx   output %s\n" ""
          d wall
          (if wall > 0.0 then seq_wall /. wall else 0.0)
          (if identical then "identical" else "DIVERGED");
        { d_domains = d; d_wall = wall; d_identical = identical })
      parallel_domain_counts
  in
  { c_name = name;
    c_in = stats.Mlcore.Compress.input;
    c_out = stats.Mlcore.Compress.output;
    c_pct =
      100.0
      *. Mlcore.Compress.compression_ratio ~before:stats.Mlcore.Compress.input
           ~after:stats.Mlcore.Compress.output;
    c_seq_wall = seq_wall;
    c_runs = runs }

(* Hand-rolled JSON writer — the schema is flat and we take no
   dependency for it. Documented in README.md. *)
let write_bench_json path results =
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-compress/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seed\": %d,\n" seed;
  spf "  \"scale\": %g,\n" scale;
  spf "  \"rpki_domains\": %d,\n" domains;
  spf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  spf "  \"datasets\": [\n";
  List.iteri
    (fun i r ->
      spf "    {\n";
      spf "      \"name\": %S,\n" r.c_name;
      spf "      \"tuples_in\": %d,\n" r.c_in;
      spf "      \"tuples_out\": %d,\n" r.c_out;
      spf "      \"compression_pct\": %.4f,\n" r.c_pct;
      spf "      \"sequential\": { \"domains\": 1, \"wall_s\": %.6f },\n" r.c_seq_wall;
      spf "      \"parallel\": [\n";
      List.iteri
        (fun j run ->
          spf
            "        { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.4f, \
             \"outputs_identical\": %b }%s\n"
            run.d_domains run.d_wall
            (if run.d_wall > 0.0 then r.c_seq_wall /. run.d_wall else 0.0)
            run.d_identical
            (if j = List.length r.c_runs - 1 then "" else ",")
        )
        r.c_runs;
      spf "      ]\n";
      spf "    }%s\n" (if i = List.length results - 1 then "" else ",")
    )
    results;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let section72 snap =
  banner "Section 7.2: compress_roas computational cost (sequential vs parallel)";
  let results =
    List.map bench_compress_dataset
      [ ("today", Dataset.Snapshot.vrps snap);
        ("full_deployment", Mlcore.Minimal.full_deployment_vrps snap.Dataset.Snapshot.table) ]
  in
  write_bench_json json_path results;
  Printf.printf "  (paper, i7-6700: today 2.4 s / 19 MB; full deployment 36 s / 290 MB)\n";
  Printf.printf "  wrote %s\n" json_path;
  if List.exists (fun r -> List.exists (fun run -> not run.d_identical) r.c_runs) results
  then begin
    prerr_endline "BENCH FAILURE: parallel compression output diverged from sequential";
    exit 1
  end

(* --- bulk validation data path (BENCH_validate.json) --- *)

(* Bulk sweeps over the hot read-side queries the Patricia index
   serves: RFC 6811 origin validation of every announced (prefix,
   origin) pair, the same-origin-ancestor query behind
   max_permissive_vrps, and the is_minimal_vrp subtree sweep. Each
   workload reduces per-query results to an int checksum; parallel
   runs (the trie is read-only here, so concurrent lookups are safe)
   must reproduce the sequential checksum exactly. *)

type v_run = { v_domains : int; v_wall : float; v_agrees : bool }

type v_result = {
  v_name : string;
  v_queries : int;
  v_seq_wall : float;
  v_runs : v_run list;
}

let ns_per_query wall queries =
  if queries > 0 then wall *. 1e9 /. float_of_int queries else 0.0

(* [f] maps one element to an int; the checksum is the sum over the
   array, computed element-wise so the parallel path can reuse [f]
   unchanged via parallel_map. *)
let bench_validate_workload name arr f =
  let queries = Array.length arr in
  let sum = Array.fold_left ( + ) 0 in
  let t0 = Unix.gettimeofday () in
  let expected = sum (Array.map f arr) in
  let seq_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  %-28s %8d queries   seq %7.3f s   %10.1f ns/query\n" name queries seq_wall
    (ns_per_query seq_wall queries);
  let runs =
    List.map
      (fun d ->
        let t0 = Unix.gettimeofday () in
        let got =
          sum (Parallel.Pool.run ~domains:d (fun pool -> Parallel.Pool.parallel_map pool ~f arr))
        in
        let wall = Unix.gettimeofday () -. t0 in
        let agrees = got = expected in
        Printf.printf "  %-28s %d domains: %7.3f s   speedup %5.2fx   %s\n" "" d wall
          (if wall > 0.0 then seq_wall /. wall else 0.0)
          (if agrees then "agrees" else "DIVERGED");
        { v_domains = d; v_wall = wall; v_agrees = agrees })
      parallel_domain_counts
  in
  { v_name = name; v_queries = queries; v_seq_wall = seq_wall; v_runs = runs }

(* Same hand-rolled style as [write_bench_json]; schema documented in
   README.md. *)
let write_validate_json path results =
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-validate/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seed\": %d,\n" seed;
  spf "  \"scale\": %g,\n" scale;
  spf "  \"rpki_domains\": %d,\n" domains;
  spf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      spf "    {\n";
      spf "      \"name\": %S,\n" r.v_name;
      spf "      \"queries\": %d,\n" r.v_queries;
      spf "      \"sequential\": { \"domains\": 1, \"wall_s\": %.6f, \"ns_per_query\": %.1f },\n"
        r.v_seq_wall
        (ns_per_query r.v_seq_wall r.v_queries);
      spf "      \"parallel\": [\n";
      List.iteri
        (fun j run ->
          spf
            "        { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.4f, \"agrees\": %b }%s\n"
            run.v_domains run.v_wall
            (if run.v_wall > 0.0 then r.v_seq_wall /. run.v_wall else 0.0)
            run.v_agrees
            (if j = List.length r.v_runs - 1 then "" else ","))
        r.v_runs;
      spf "      ]\n";
      spf "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let section_validate snap =
  banner "Validation data path: bulk queries over the path-compressed index";
  let table = snap.Dataset.Snapshot.table in
  let vrps = Dataset.Snapshot.vrps snap in
  let db = Rpki.Validation.create vrps in
  let pairs = Array.of_list (Dataset.Bgp_table.pairs table) in
  let vrps_arr = Array.of_list vrps in
  let state_code = function
    | Rpki.Validation.Valid -> 1
    | Rpki.Validation.Invalid -> 2
    | Rpki.Validation.Not_found -> 3
  in
  (* explicit lets: list literals evaluate right-to-left, which would
     interleave the progress output out of order *)
  let r_validate =
    bench_validate_workload "validation/bulk-validate" pairs (fun (p, a) ->
        state_code (Rpki.Validation.validate db p a))
  in
  let r_ancestor =
    bench_validate_workload "bgp_table/bulk-ancestor" pairs (fun (p, a) ->
        if Dataset.Bgp_table.has_same_origin_ancestor table p a then 1 else 0)
  in
  let r_minimal =
    bench_validate_workload "minimal/is-minimal-sweep" vrps_arr (fun v ->
        if Mlcore.Minimal.is_minimal_vrp table v then 1 else 0)
  in
  let results = [ r_validate; r_ancestor; r_minimal ] in
  write_validate_json validate_json_path results;
  Printf.printf "  wrote %s\n" validate_json_path;
  if List.exists (fun r -> List.exists (fun run -> not run.v_agrees) r.v_runs) results
  then begin
    prerr_endline "BENCH FAILURE: parallel validation results diverged from sequential";
    exit 1
  end

(* --- arena vs record data plane (BENCH_arena.json) --- *)

(* The PR-7 acceptance bench: the flat-arena data plane (Validation,
   Bgp_table, Compress) against the retained record-backed oracles
   (Validation_oracle, Bgp_table_ref, Compress.run_reference). Every
   per-query output is compared element-wise — not just a checksum —
   and the section fails hard if the arena disagrees anywhere or is
   not strictly faster than the record path (minimum wall over
   [arena_repeats] repetitions on both sides, so a single noisy run
   cannot flip the verdict either way). *)

type a_run = { a_domains : int; a_wall : float; a_agrees : bool }

type a_result = {
  a_name : string;
  a_queries : int;
  a_record_wall : float;
  a_arena_wall : float;
  a_agree : bool;
  a_runs : a_run list; (* the arena side under a domain pool *)
}

(* Each repeat starts from a fully settled heap: with the snapshot's
   large live set resident, mark/sweep debt left by the previous run
   (or by the other side's runs) otherwise taxes this run's
   allocations with GC work that isn't its own — the record and arena
   sides would contaminate each other's walls in whichever order they
   were timed. [Gc.full_major], not [Gc.major]: one finished cycle
   still leaves the previous run's garbage unswept (it died after that
   cycle's mark snapshot), and the leftover sweep lands mid-repeat.

   A sub-50ms workload is additionally batched: one stray scheduler
   preemption or major slice is the same order as the whole wall, so a
   single-run minimum is a coin flip at small bench scales. Looping to
   a ~50ms floor and averaging amortizes the spikes identically for
   both sides. *)
let min_wall f =
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  ignore (Sys.opaque_identity (f ()));
  let est = Unix.gettimeofday () -. t0 in
  let iters =
    if est >= 0.05 then 1 else min 64 (int_of_float (ceil (0.05 /. Float.max est 1e-6)))
  in
  let best = ref infinity in
  for _ = 1 to arena_repeats do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let w = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    if w < !best then best := w
  done;
  !best

(* [record] and [arena] both map a query index to a small int code.
   Agreement is element-wise over the full code arrays; the timed runs
   fill a preallocated scratch array so neither side pays allocation
   the other doesn't. *)
let bench_arena_workload name queries ~record ~arena =
  let record_codes = Array.init queries record in
  let arena_codes = Array.init queries arena in
  let agree = Array.for_all2 Int.equal record_codes arena_codes in
  let scratch = Array.make (max queries 1) 0 in
  let fill f () =
    for i = 0 to queries - 1 do
      scratch.(i) <- f i
    done
  in
  let record_wall = min_wall (fill record) in
  let arena_wall = min_wall (fill arena) in
  Printf.printf
    "  %-28s %8d queries   record %8.1f ns/q   arena %8.1f ns/q   %5.2fx   %s\n" name queries
    (ns_per_query record_wall queries)
    (ns_per_query arena_wall queries)
    (if arena_wall > 0.0 then record_wall /. arena_wall else 0.0)
    (if agree then "identical" else "DIVERGED");
  let idx = Array.init queries Fun.id in
  let sum = Array.fold_left ( + ) 0 in
  let expected = sum arena_codes in
  let runs =
    List.map
      (fun d ->
        Gc.major ();
        let t0 = Unix.gettimeofday () in
        let got =
          sum
            (Parallel.Pool.run ~domains:d (fun pool ->
                 Parallel.Pool.parallel_map pool ~f:arena idx))
        in
        let wall = Unix.gettimeofday () -. t0 in
        let agrees = got = expected in
        Printf.printf "  %-28s %d domains: %7.3f s   speedup %5.2fx   %s\n" "" d wall
          (if wall > 0.0 then arena_wall /. wall else 0.0)
          (if agrees then "agrees" else "DIVERGED");
        { a_domains = d; a_wall = wall; a_agrees = agrees })
      parallel_domain_counts
  in
  { a_name = name;
    a_queries = queries;
    a_record_wall = record_wall;
    a_arena_wall = arena_wall;
    a_agree = agree;
    a_runs = runs }

(* Whole-pipeline comparison: the arena compress (sequential and on a
   domain pool) against the record-path reference, outputs compared as
   full VRP lists. *)
let bench_arena_compress (name, vrps) =
  let record_out = Mlcore.Compress.run_reference vrps in
  let arena_out = Mlcore.Compress.run ~domains:1 vrps in
  let agree = List.equal Rpki.Vrp.equal record_out arena_out in
  let record_wall = min_wall (fun () -> Mlcore.Compress.run_reference vrps) in
  let arena_wall = min_wall (fun () -> Mlcore.Compress.run ~domains:1 vrps) in
  Printf.printf "  %-28s %8d tuples    record %8.3f s     arena %8.3f s     %5.2fx   %s\n" name
    (List.length vrps) record_wall arena_wall
    (if arena_wall > 0.0 then record_wall /. arena_wall else 0.0)
    (if agree then "identical" else "DIVERGED");
  let runs =
    List.map
      (fun d ->
        Gc.major ();
        let t0 = Unix.gettimeofday () in
        let out = Mlcore.Compress.run ~domains:d vrps in
        let wall = Unix.gettimeofday () -. t0 in
        let agrees = List.equal Rpki.Vrp.equal out record_out in
        Printf.printf "  %-28s %d domains: %7.3f s   speedup %5.2fx   %s\n" "" d wall
          (if wall > 0.0 then arena_wall /. wall else 0.0)
          (if agrees then "agrees" else "DIVERGED");
        { a_domains = d; a_wall = wall; a_agrees = agrees })
      parallel_domain_counts
  in
  { a_name = name;
    a_queries = List.length vrps;
    a_record_wall = record_wall;
    a_arena_wall = arena_wall;
    a_agree = agree;
    a_runs = runs }

(* Same hand-rolled style as [write_bench_json]; schema documented in
   README.md. *)
let write_arena_json path results =
  let outputs_agree =
    List.for_all (fun r -> r.a_agree && List.for_all (fun run -> run.a_agrees) r.a_runs) results
  in
  let arena_faster = List.for_all (fun r -> r.a_arena_wall < r.a_record_wall) results in
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-arena/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seed\": %d,\n" seed;
  spf "  \"scale\": %g,\n" scale;
  spf "  \"repeats\": %d,\n" arena_repeats;
  spf "  \"rpki_domains\": %d,\n" domains;
  spf "  \"outputs_agree\": %b,\n" outputs_agree;
  spf "  \"arena_faster\": %b,\n" arena_faster;
  spf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      spf "    {\n";
      spf "      \"name\": %S,\n" r.a_name;
      spf "      \"queries\": %d,\n" r.a_queries;
      spf "      \"record\": { \"wall_s\": %.6f, \"ns_per_query\": %.1f },\n" r.a_record_wall
        (ns_per_query r.a_record_wall r.a_queries);
      spf "      \"arena\": { \"wall_s\": %.6f, \"ns_per_query\": %.1f },\n" r.a_arena_wall
        (ns_per_query r.a_arena_wall r.a_queries);
      spf "      \"speedup_vs_record\": %.4f,\n"
        (if r.a_arena_wall > 0.0 then r.a_record_wall /. r.a_arena_wall else 0.0);
      spf "      \"outputs_identical\": %b,\n" r.a_agree;
      spf "      \"parallel\": [\n";
      List.iteri
        (fun j run ->
          spf
            "        { \"domains\": %d, \"wall_s\": %.6f, \"speedup\": %.4f, \"agrees\": %b }%s\n"
            run.a_domains run.a_wall
            (if run.a_wall > 0.0 then r.a_arena_wall /. run.a_wall else 0.0)
            run.a_agrees
            (if j = List.length r.a_runs - 1 then "" else ","))
        r.a_runs;
      spf "      ]\n";
      spf "    }%s\n" (if i = List.length results - 1 then "" else ","))
    results;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let section_arena snap =
  banner
    (Printf.sprintf
       "Arena data plane: flat-arena store vs record oracle (min of %d runs each)" arena_repeats);
  let table = snap.Dataset.Snapshot.table in
  let vrps = Dataset.Snapshot.vrps snap in
  let pairs = Array.of_list (Dataset.Bgp_table.pairs table) in
  let n = Array.length pairs in
  let adb = Rpki.Validation.create vrps in
  let odb = Rpki.Validation_oracle.create vrps in
  let rtable = Dataset.Bgp_table_ref.create () in
  Array.iter (fun (p, a) -> Dataset.Bgp_table_ref.add rtable p a) pairs;
  let state_code = function
    | Rpki.Validation.Valid -> 1
    | Rpki.Validation.Invalid -> 2
    | Rpki.Validation.Not_found -> 3
  in
  let r_validate =
    bench_arena_workload "validation/bulk-validate" n
      ~record:(fun i ->
        let p, a = pairs.(i) in
        state_code (Rpki.Validation_oracle.validate odb p a))
      ~arena:(fun i ->
        let p, a = pairs.(i) in
        state_code (Rpki.Validation.validate adb p a))
  in
  let r_ancestor =
    bench_arena_workload "bgp_table/bulk-ancestor" n
      ~record:(fun i ->
        let p, a = pairs.(i) in
        if Dataset.Bgp_table_ref.has_same_origin_ancestor rtable p a then 1 else 0)
      ~arena:(fun i ->
        let p, a = pairs.(i) in
        if Dataset.Bgp_table.has_same_origin_ancestor table p a then 1 else 0)
  in
  let r_covering =
    bench_arena_workload "validation/covering-count" n
      ~record:(fun i -> Rpki.Validation_oracle.covering_count odb (fst pairs.(i)))
      ~arena:(fun i -> Rpki.Validation.covering_count adb (fst pairs.(i)))
  in
  let r_compress = bench_arena_compress ("compress/today", vrps) in
  let r_compress_full =
    bench_arena_compress
      ("compress/full_deployment", Mlcore.Minimal.full_deployment_vrps table)
  in
  let results = [ r_validate; r_ancestor; r_covering; r_compress; r_compress_full ] in
  write_arena_json arena_json_path results;
  Printf.printf "  wrote %s\n" arena_json_path;
  if
    List.exists
      (fun r -> (not r.a_agree) || List.exists (fun run -> not run.a_agrees) r.a_runs)
      results
  then begin
    prerr_endline "BENCH FAILURE: arena output diverged from the record oracle";
    exit 1
  end;
  if List.exists (fun r -> r.a_arena_wall >= r.a_record_wall) results then begin
    prerr_endline "BENCH FAILURE: arena path not strictly faster than the record path";
    exit 1
  end

(* --- RTR fault-injection sweep (BENCH_rtr.json) --- *)

(* The netsim acceptance sweep as a measured artifact: [rtr_seeds]
   seeds per fault policy, each run checked against the convergence
   invariant (every non-degraded router ends on the cache's exact
   final VRP set, degradation is explicit), plus one replay per policy
   proving the sweep is deterministic. *)

type rtr_row = {
  r_policy : string;
  r_runs : int;
  r_ok : int;
  r_routers : int;
  r_fresh : int; (* Fresh with the exact final set *)
  r_stale : int;
  r_degraded : int; (* Expired / No_data: explicit degraded mode *)
  r_reconnects : int;
  r_framer_errors : int;
  r_tainted : int; (* deliveries flagged as stream damage *)
  r_events : int;
  r_wall : float;
  r_replay_ok : bool;
}

let bench_rtr_policy policy =
  let module Sim = Netsim.Rtr_sim in
  let module Fault = Netsim.Fault in
  let ok = ref 0 and routers = ref 0 and fresh = ref 0 and stale = ref 0 in
  let degraded = ref 0 and reconnects = ref 0 and framer_errors = ref 0 in
  let tainted = ref 0 and events = ref 0 in
  let t0 = Unix.gettimeofday () in
  for s = 1 to rtr_seeds do
    let r = Sim.run ~seed:s ~policy () in
    if r.Sim.ok then incr ok;
    framer_errors := !framer_errors + r.Sim.framer_errors;
    tainted := !tainted + r.Sim.link.Netsim.Link.tainted;
    events := !events + r.Sim.events;
    List.iter
      (fun o ->
        incr routers;
        reconnects := !reconnects + o.Sim.reconnects;
        match o.Sim.freshness with
        | Rtr.Router_client.Fresh when o.Sim.vrps_ok -> incr fresh
        | Rtr.Router_client.Stale when o.Sim.vrps_ok -> incr stale
        | Rtr.Router_client.Fresh | Rtr.Router_client.Stale ->
          (* [Sim.ok] already failed for this run; count it degraded
             so the fresh/stale columns stay truthful. *)
          incr degraded
        | Rtr.Router_client.Expired | Rtr.Router_client.No_data -> incr degraded)
      r.Sim.outcomes
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let replay_ok =
    let a = Sim.run ~seed:1 ~policy () in
    let b = Sim.run ~seed:1 ~policy () in
    String.equal a.Sim.fingerprint b.Sim.fingerprint
  in
  Printf.printf
    "  %-12s %3d/%3d ok   routers: %3d fresh / %2d stale / %2d degraded   reconnects %4d   \
     tainted %5d   %6.2f s   replay %s\n"
    policy.Fault.name !ok rtr_seeds !fresh !stale !degraded !reconnects !tainted wall
    (if replay_ok then "ok" else "DIVERGED");
  { r_policy = policy.Fault.name;
    r_runs = rtr_seeds;
    r_ok = !ok;
    r_routers = !routers;
    r_fresh = !fresh;
    r_stale = !stale;
    r_degraded = !degraded;
    r_reconnects = !reconnects;
    r_framer_errors = !framer_errors;
    r_tainted = !tainted;
    r_events = !events;
    r_wall = wall;
    r_replay_ok = replay_ok }

(* Same hand-rolled style as [write_bench_json]; schema documented in
   README.md. *)
let write_rtr_json path rows =
  let all_ok = List.for_all (fun r -> r.r_ok = r.r_runs) rows in
  let deterministic = List.for_all (fun r -> r.r_replay_ok) rows in
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-rtr/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seeds_per_policy\": %d,\n" rtr_seeds;
  spf "  \"all_ok\": %b,\n" all_ok;
  spf "  \"deterministic\": %b,\n" deterministic;
  spf "  \"policies\": [\n";
  List.iteri
    (fun i r ->
      spf "    {\n";
      spf "      \"policy\": %S,\n" r.r_policy;
      spf "      \"runs\": %d,\n" r.r_runs;
      spf "      \"ok\": %d,\n" r.r_ok;
      spf "      \"routers\": %d,\n" r.r_routers;
      spf "      \"fresh\": %d,\n" r.r_fresh;
      spf "      \"stale\": %d,\n" r.r_stale;
      spf "      \"degraded\": %d,\n" r.r_degraded;
      spf "      \"reconnects\": %d,\n" r.r_reconnects;
      spf "      \"framer_errors\": %d,\n" r.r_framer_errors;
      spf "      \"tainted_deliveries\": %d,\n" r.r_tainted;
      spf "      \"events\": %d,\n" r.r_events;
      spf "      \"wall_s\": %.6f,\n" r.r_wall;
      spf "      \"replay_ok\": %b\n" r.r_replay_ok;
      spf "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let section_rtr () =
  banner
    (Printf.sprintf "RTR fault-injection sweep (%d seeds x %d policies)" rtr_seeds
       (List.length Netsim.Fault.all));
  let rows = List.map bench_rtr_policy Netsim.Fault.all in
  write_rtr_json rtr_json_path rows;
  Printf.printf "  wrote %s\n" rtr_json_path;
  if List.exists (fun r -> r.r_ok <> r.r_runs) rows then begin
    prerr_endline "BENCH FAILURE: an RTR simulation violated the convergence invariant";
    exit 1
  end;
  if List.exists (fun r -> not r.r_replay_ok) rows then begin
    prerr_endline "BENCH FAILURE: an RTR simulation replay diverged (determinism lost)";
    exit 1
  end

(* --- encode-once fan-out scale bench (BENCH_rtr_fanout.json) --- *)

(* One cache, N router sessions on a heterogeneous fleet (perfect,
   rechunking and delaying links interleaved), driven through the full
   scripted publication sequence. The point being measured: serving N
   sessions costs exactly one delta encode per serial bump — the run
   fails hard if [delta_encodes <> publishes] — while throughput is
   reported as sessions simulated per wall-clock second and
   time-to-Fresh percentiles after the last publication. *)

type fanout_row = {
  f_sessions : int;
  f_publishes : int;
  f_delta_encodes : int;
  f_snapshot_encodes : int;
  f_merge_encodes : int;
  f_bytes_per_router : float;
  f_retained_bytes : int;
  f_fresh : int;
  f_stale : int;
  f_degraded : int;
  f_p50_ms : int;
  f_p99_ms : int;
  f_events : int;
  f_wall : float;
  f_sessions_per_s : float;
}

let fanout_mix = Netsim.Fault.[ perfect; rechunking; delaying ]

(* Nearest-rank percentile over a sorted array; 0 when no router
   reached the final set (every such run also fails the freshness
   check below, so the 0 can never masquerade as a good result). *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let bench_fanout sessions =
  let module Sim = Netsim.Rtr_sim in
  let config = { Sim.default_config with Sim.routers = sessions; trace = false } in
  let t0 = Unix.gettimeofday () in
  let r = Sim.run ~config ~mix:fanout_mix ~seed ~policy:Netsim.Fault.perfect () in
  let wall = Unix.gettimeofday () -. t0 in
  let fresh = ref 0 and stale = ref 0 and degraded = ref 0 in
  let to_fresh =
    List.filter_map
      (fun o ->
        (match o.Sim.freshness with
         | Rtr.Router_client.Fresh when o.Sim.vrps_ok -> incr fresh
         | Rtr.Router_client.Stale when o.Sim.vrps_ok -> incr stale
         | _ -> incr degraded);
        Option.map (fun t -> max 0 (t - r.Sim.last_publish)) o.Sim.first_final)
      r.Sim.outcomes
    |> Array.of_list
  in
  Array.sort Int.compare to_fresh;
  let stats = r.Sim.cache_stats in
  let row =
    { f_sessions = sessions;
      f_publishes = r.Sim.publishes;
      f_delta_encodes = stats.Rtr.Cache_server.delta_encodes;
      f_snapshot_encodes = stats.Rtr.Cache_server.snapshot_encodes;
      f_merge_encodes = stats.Rtr.Cache_server.merge_encodes;
      f_bytes_per_router = float_of_int r.Sim.link.Netsim.Link.bytes /. float_of_int sessions;
      f_retained_bytes = r.Sim.cache_retained_bytes;
      f_fresh = !fresh;
      f_stale = !stale;
      f_degraded = !degraded;
      f_p50_ms = percentile to_fresh 0.50;
      f_p99_ms = percentile to_fresh 0.99;
      f_events = r.Sim.events;
      f_wall = wall;
      f_sessions_per_s = float_of_int sessions /. wall }
  in
  Printf.printf
    "  %7d sessions   %2d publishes / %2d delta encodes   %8.0f bytes/router   %6d fresh / \
     %d stale / %d degraded   p50 %5d ms  p99 %5d ms   %7.2f s  (%8.0f sessions/s)\n"
    sessions r.Sim.publishes stats.Rtr.Cache_server.delta_encodes row.f_bytes_per_router !fresh
    !stale !degraded row.f_p50_ms row.f_p99_ms wall row.f_sessions_per_s;
  row

(* Same hand-rolled style as [write_bench_json]; schema documented in
   README.md. *)
let write_fanout_json path rows =
  let encode_once_ok = List.for_all (fun r -> r.f_delta_encodes = r.f_publishes) rows in
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-rtr-fanout/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seed\": %d,\n" seed;
  spf "  \"mix\": [%s],\n"
    (String.concat ", " (List.map (fun p -> Printf.sprintf "%S" p.Netsim.Fault.name) fanout_mix));
  spf "  \"encode_once_ok\": %b,\n" encode_once_ok;
  spf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      spf "    {\n";
      spf "      \"sessions\": %d,\n" r.f_sessions;
      spf "      \"publishes\": %d,\n" r.f_publishes;
      spf "      \"delta_encodes\": %d,\n" r.f_delta_encodes;
      spf "      \"snapshot_encodes\": %d,\n" r.f_snapshot_encodes;
      spf "      \"merge_encodes\": %d,\n" r.f_merge_encodes;
      spf "      \"bytes_per_router\": %.1f,\n" r.f_bytes_per_router;
      spf "      \"cache_retained_bytes\": %d,\n" r.f_retained_bytes;
      spf "      \"fresh\": %d,\n" r.f_fresh;
      spf "      \"stale\": %d,\n" r.f_stale;
      spf "      \"degraded\": %d,\n" r.f_degraded;
      spf "      \"p50_to_fresh_ms\": %d,\n" r.f_p50_ms;
      spf "      \"p99_to_fresh_ms\": %d,\n" r.f_p99_ms;
      spf "      \"events\": %d,\n" r.f_events;
      spf "      \"wall_s\": %.6f,\n" r.f_wall;
      spf "      \"sessions_per_s\": %.1f\n" r.f_sessions_per_s;
      spf "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let section_fanout () =
  banner
    (Printf.sprintf "Encode-once RTR fan-out: one cache, sessions at %s"
       (String.concat "/" (List.map string_of_int fanout_sessions)));
  let rows = List.map bench_fanout fanout_sessions in
  write_fanout_json fanout_json_path rows;
  Printf.printf "  wrote %s\n" fanout_json_path;
  List.iter
    (fun r ->
      if r.f_delta_encodes <> r.f_publishes then begin
        Printf.eprintf
          "BENCH FAILURE: %d sessions took %d delta encodes for %d publishes — the \
           encode-once invariant is broken\n"
          r.f_sessions r.f_delta_encodes r.f_publishes;
        exit 1
      end;
      (* The scale runs must stay a working deployment, not just a fast
         one: at least 90%% of the fleet ends Fresh on the exact set. *)
      if r.f_fresh * 10 < r.f_sessions * 9 then begin
        Printf.eprintf "BENCH FAILURE: only %d of %d sessions ended Fresh\n" r.f_fresh
          r.f_sessions;
        exit 1
      end)
    rows

(* --- live churn: incremental engine vs batch recompute (BENCH_churn.json) --- *)

(* The timeline replayed as an event stream: the incremental engine
   (Rpki.Churn) absorbs each week-to-week diff and re-serves
   validation, minimality and the compressed ROA set, while the batch
   side rebuilds all of it from scratch on every transition — the cost
   a cache pays without incrementality. Two hard gates: the
   incremental compressed/valid/non-minimal state must be identical to
   batch at every transition, and the total incremental cost must be
   strictly below the batch-recompute cost at the same scale. The
   final per-transition compressed sets are then fed as the RTR
   publication script, so the fan-out serves the live deltas. *)

type churn_row = {
  h_label : string;
  h_events : int;
  h_bgp_changes : int;
  h_vrp_changes : int;
  h_group_recomputes : int;
  h_incr_wall : float;
  h_batch_wall : float;
  h_identical : bool;
}

let write_churn_json path rows ~total_events ~incr_wall ~batch_wall ~identical
    ~(rtr : Netsim.Rtr_sim.report) =
  let buf = Buffer.create 2048 in
  let spf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let per_event w = if total_events > 0 then w *. 1e9 /. float_of_int total_events else 0.0 in
  spf "{\n";
  spf "  \"schema\": \"rpki-maxlen/bench-churn/v1\",\n";
  spf "  \"ocaml_version\": %S,\n" Sys.ocaml_version;
  spf "  \"word_size\": %d,\n" Sys.word_size;
  spf "  \"seed\": %d,\n" seed;
  spf "  \"churn_scale\": %g,\n" churn_scale;
  spf "  \"transitions\": %d,\n" (List.length rows);
  spf "  \"total_events\": %d,\n" total_events;
  spf "  \"incremental\": { \"wall_s\": %.6f, \"ns_per_event\": %.1f, \"events_per_s\": %.1f },\n"
    incr_wall (per_event incr_wall)
    (if incr_wall > 0.0 then float_of_int total_events /. incr_wall else 0.0);
  spf "  \"batch\": { \"wall_s\": %.6f, \"ns_per_event_amortized\": %.1f },\n" batch_wall
    (per_event batch_wall);
  spf "  \"speedup\": %.2f,\n" (if incr_wall > 0.0 then batch_wall /. incr_wall else 0.0);
  spf "  \"incremental_matches_batch\": %b,\n" identical;
  spf "  \"rtr\": { \"routers\": %d, \"publishes\": %d, \"ok\": %b },\n" churn_routers
    rtr.Netsim.Rtr_sim.publishes rtr.Netsim.Rtr_sim.ok;
  spf "  \"transitions_detail\": [\n";
  List.iteri
    (fun i r ->
      spf
        "    { \"label\": %S, \"events\": %d, \"bgp_changes\": %d, \"vrp_changes\": %d, \
         \"group_recomputes\": %d, \"incremental_wall_s\": %.6f, \"batch_wall_s\": %.6f, \
         \"identical\": %b }%s\n"
        r.h_label r.h_events r.h_bgp_changes r.h_vrp_changes r.h_group_recomputes r.h_incr_wall
        r.h_batch_wall r.h_identical
        (if i = List.length rows - 1 then "" else ","))
    rows;
  spf "  ]\n";
  spf "}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let bench_churn () =
  banner
    (Printf.sprintf "Live churn: incremental engine vs per-transition batch recompute (scale %g)"
       churn_scale);
  let weeks =
    Dataset.Timeline.generate ~params:(Dataset.Snapshot.scaled churn_scale) ~seed ()
  in
  let weeks_arr = Array.of_list weeks in
  let stream = Dataset.Timeline.event_stream weeks in
  let pairs0, vrps0 = Dataset.Timeline.state_of weeks_arr.(0).Dataset.Timeline.snapshot in
  let t = Rpki.Churn.create ~pairs:pairs0 ~vrps:vrps0 () in
  let script = ref [ Rpki.Churn.compressed t ] in
  let rows =
    List.mapi
      (fun i (label, events) ->
        let before = Rpki.Churn.stats t in
        let t0 = Unix.gettimeofday () in
        List.iter (fun ev -> ignore (Rpki.Churn.apply t ev)) events;
        let incr_compressed = Rpki.Churn.compressed t in
        let incr_wall = Unix.gettimeofday () -. t0 in
        let after = Rpki.Churn.stats t in
        script := incr_compressed :: !script;
        (* Batch side: rebuild everything the engine maintains from the
           target snapshot — validation db, full-table revalidation,
           minimality scan, compression. *)
        let next = weeks_arr.(i + 1).Dataset.Timeline.snapshot in
        let pairs, vrps = Dataset.Timeline.state_of next in
        let table = next.Dataset.Snapshot.table in
        let t1 = Unix.gettimeofday () in
        let db = Rpki.Validation.create vrps in
        let batch_valid =
          List.fold_left
            (fun n (q, origin) -> if Rpki.Validation.authorized db q origin then n + 1 else n)
            0 pairs
        in
        let batch_nonmin =
          List.filter
            (fun w ->
              Rpki.Vrp.uses_max_len w && not (Mlcore.Minimal.is_minimal_vrp table w))
            vrps
        in
        let batch_compressed = Mlcore.Compress.run vrps in
        let batch_wall = Unix.gettimeofday () -. t1 in
        let identical =
          List.equal Rpki.Vrp.equal incr_compressed batch_compressed
          && Rpki.Churn.valid_count t = batch_valid
          && List.equal Rpki.Vrp.equal (Rpki.Churn.non_minimal t) batch_nonmin
          && List.equal Rpki.Vrp.equal (Rpki.Churn.vrps t) vrps
        in
        let row =
          { h_label = label;
            h_events = List.length events;
            h_bgp_changes = after.Rpki.Churn.bgp_changes - before.Rpki.Churn.bgp_changes;
            h_vrp_changes = after.Rpki.Churn.vrp_changes - before.Rpki.Churn.vrp_changes;
            h_group_recomputes =
              after.Rpki.Churn.group_recomputes - before.Rpki.Churn.group_recomputes;
            h_incr_wall = incr_wall;
            h_batch_wall = batch_wall;
            h_identical = identical }
        in
        Printf.printf
          "  %-12s %6d events (%5d bgp, %4d vrp)  %4d groups   incr %8.4f s   batch %8.4f s   \
           identical %b\n"
          label row.h_events row.h_bgp_changes row.h_vrp_changes row.h_group_recomputes incr_wall
          batch_wall identical;
        row)
      stream
  in
  let total_events = List.fold_left (fun n r -> n + r.h_events) 0 rows in
  let incr_wall = List.fold_left (fun w r -> w +. r.h_incr_wall) 0.0 rows in
  let batch_wall = List.fold_left (fun w r -> w +. r.h_batch_wall) 0.0 rows in
  let identical = List.for_all (fun r -> r.h_identical) rows in
  (* The compressed sets just maintained, published over RTR to a
     router fleet: live churn all the way to the wire. *)
  let module Sim = Netsim.Rtr_sim in
  let config =
    { Sim.default_config with
      Sim.routers = churn_routers;
      trace = false;
      script = Some (List.rev !script) }
  in
  let rtr = Sim.run ~config ~mix:fanout_mix ~seed ~policy:Netsim.Fault.perfect () in
  Printf.printf
    "  totals: %d events   incr %.4f s (%.0f ns/event, %.0f events/s)   batch %.4f s \
     (%.0f ns/event amortized)   speedup %.1fx\n"
    total_events incr_wall
    (if total_events > 0 then incr_wall *. 1e9 /. float_of_int total_events else 0.0)
    (if incr_wall > 0.0 then float_of_int total_events /. incr_wall else 0.0)
    batch_wall
    (if total_events > 0 then batch_wall *. 1e9 /. float_of_int total_events else 0.0)
    (if incr_wall > 0.0 then batch_wall /. incr_wall else 0.0);
  Printf.printf "  rtr: %d routers served %d publishes, ok=%b\n" churn_routers
    rtr.Sim.publishes rtr.Sim.ok;
  write_churn_json churn_json_path rows ~total_events ~incr_wall ~batch_wall ~identical ~rtr;
  Printf.printf "  wrote %s\n" churn_json_path;
  if not identical then begin
    prerr_endline
      "BENCH FAILURE: incremental churn state diverged from the batch recompute";
    exit 1
  end;
  if incr_wall >= batch_wall then begin
    Printf.eprintf
      "BENCH FAILURE: incremental churn (%.4f s) is not cheaper than batch recompute (%.4f s)\n"
      incr_wall batch_wall;
    exit 1
  end;
  if not rtr.Sim.ok then begin
    prerr_endline "BENCH FAILURE: the churn-scripted RTR run violated the convergence invariant";
    exit 1
  end

(* --- ablation: Strict vs Paper merge rule --- *)

let ablation snap =
  banner "Ablation: Strict (lossless) vs Paper (verbatim Algorithm 1) merge rule";
  let table = snap.Dataset.Snapshot.table in
  let bound = List.length (Mlcore.Minimal.max_permissive_vrps table) in
  let row name input =
    let n = List.length input in
    let strict = List.length (Mlcore.Compress.run ~mode:Mlcore.Compress.Strict input) in
    let paper = List.length (Mlcore.Compress.run ~mode:Mlcore.Compress.Paper input) in
    Printf.printf "  %-24s %9d | strict %9d (-%5.2f%%) | paper %9d (-%5.2f%%)\n" name n strict
      (100.0 *. Mlcore.Compress.compression_ratio ~before:n ~after:strict)
      paper
      (100.0 *. Mlcore.Compress.compression_ratio ~before:n ~after:paper)
  in
  row "today's RPKI" (Dataset.Snapshot.vrps snap);
  row "full deployment" (Mlcore.Minimal.full_deployment_vrps table);
  Printf.printf
    "  lower bound: %d tuples. Paper mode compresses harder but can authorize\n\
     \  routes the input never did (see EXPERIMENTS.md and test_compress.ml).\n"
    bound

(* --- Bechamel micro-benchmarks --- *)

let run_bechamel tests =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-34s %14.1f ns/run%s\n" name est
              (match Analyze.OLS.r_square ols_result with
               | Some r when r < 0.9 -> Printf.sprintf "  (r2 %.2f)" r
               | Some _ | None -> "")
          | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
        results)
    tests

let micro_benchmarks snap =
  banner "Micro-benchmarks (Bechamel, OLS ns/run)";
  let open Bechamel in
  let vrps = Dataset.Snapshot.vrps snap in
  let vrps_arr = Array.of_list vrps in
  let db = Rpki.Validation.create vrps in
  let table = snap.Dataset.Snapshot.table in
  let probe_prefixes =
    Array.init 256 (fun i ->
        Netaddr.Pfx.of_string_exn
          (Printf.sprintf "%d.%d.%d.0/24" (1 + (i mod 200)) (i * 7 mod 256) (i * 13 mod 256)))
  in
  let asns = Array.init 256 (fun i -> Rpki.Asnum.of_int (64_001 + (i * 37 mod 5_000))) in
  let counter = ref 0 in
  let next arr =
    incr counter;
    arr.(!counter land 255)
  in
  let roa_fig2 =
    Result.get_ok
      (Rpki.Roa.of_simple (Rpki.Asnum.of_int 31283)
         [ ("87.254.32.0/19", None); ("87.254.32.0/20", None); ("87.254.48.0/20", None);
           ("87.254.32.0/21", None) ])
  in
  let rtr_pdu =
    Rtr.Pdu.Prefix
      { flags = Rtr.Pdu.Announce;
        vrp =
          Rpki.Vrp.make_exn
            (Netaddr.Pfx.of_string_exn "168.122.0.0/16")
            ~max_len:24 (Rpki.Asnum.of_int 111) }
  in
  let rtr_wire = (Rtr.Pdu.encode rtr_pdu [@lint.encode_ok]) in
  let update =
    { Bgp.Wire.withdrawn = [ Netaddr.Pfx.of_string_exn "192.0.2.0/24" ];
      announced =
        [ Netaddr.Pfx.of_string_exn "168.122.0.0/16"; Netaddr.Pfx.of_string_exn "2001:db8::/32" ];
      as_path = [ Rpki.Asnum.of_int 3356; Rpki.Asnum.of_int 111 ] }
  in
  let update_wire = Bgp.Wire.encode update in
  let roa_wire = Rpki.Roa_der.encode roa_fig2 in
  let compress_chunk = Array.to_list (Array.sub vrps_arr 0 (min 1000 (Array.length vrps_arr))) in
  let block = String.make 1024 'x' in
  (* BGPsec: a 3-hop signed chain, validated repeatedly. *)
  let bgpsec_ks = Bgp.Bgpsec.create_keystore ~key_height:6 ~seed:"bench" () in
  List.iter (fun n -> Bgp.Bgpsec.enroll bgpsec_ks (Rpki.Asnum.of_int n)) [ 111; 3356; 174 ];
  let bgpsec_chain =
    let sr =
      Result.get_ok
        (Bgp.Bgpsec.originate bgpsec_ks
           ~prefix:(Netaddr.Pfx.of_string_exn "168.122.0.0/16")
           ~origin:(Rpki.Asnum.of_int 111) ~to_:(Rpki.Asnum.of_int 3356))
    in
    Result.get_ok
      (Bgp.Bgpsec.forward bgpsec_ks sr ~by:(Rpki.Asnum.of_int 3356) ~to_:(Rpki.Asnum.of_int 174))
  in
  (* RTR framer: a burst of prefix PDUs re-framed from one buffer. *)
  let rtr_burst = String.concat "" (List.init 64 (fun _ -> rtr_wire)) in
  let aggregate_input =
    List.init 64 (fun i ->
        Netaddr.Pfx.of_string_exn (Printf.sprintf "10.%d.0.0/16" (i land 0x3f)))
  in
  run_bechamel
    [ Test.make ~name:"sha256/1KiB" (Staged.stage (fun () -> Hashcrypto.Sha256.digest block));
      Test.make ~name:"validation/validate"
        (Staged.stage (fun () -> Rpki.Validation.validate db (next probe_prefixes) (next asns)));
      Test.make ~name:"bgp_table/ancestor-query"
        (Staged.stage (fun () ->
             Dataset.Bgp_table.has_same_origin_ancestor table (next probe_prefixes) (next asns)));
      Test.make ~name:"scan_roas/figure-2-roa"
        (Staged.stage (fun () -> Rpki.Scan_roas.vrps_of_roas [ roa_fig2 ]));
      Test.make ~name:"rtr/encode-prefix-pdu" (Staged.stage (fun () -> (Rtr.Pdu.encode rtr_pdu [@lint.encode_ok])));
      Test.make ~name:"rtr/decode-prefix-pdu" (Staged.stage (fun () -> Rtr.Pdu.decode rtr_wire 0));
      Test.make ~name:"bgp/encode-update" (Staged.stage (fun () -> Bgp.Wire.encode update));
      Test.make ~name:"bgp/decode-update" (Staged.stage (fun () -> Bgp.Wire.decode update_wire));
      Test.make ~name:"roa_der/decode" (Staged.stage (fun () -> Rpki.Roa_der.decode roa_wire));
      Test.make ~name:"bgpsec/validate-3-hop"
        (Staged.stage (fun () -> Bgp.Bgpsec.validate bgpsec_ks bgpsec_chain));
      Test.make ~name:"rtr/frame-64-pdus"
        (Staged.stage (fun () ->
             let f = Rtr.Framer.create () in
             Rtr.Framer.feed f rtr_burst));
      Test.make ~name:"pfx/aggregate-64"
        (Staged.stage (fun () -> Netaddr.Pfx.aggregate aggregate_input));
      Test.make ~name:"compress/1k-tuples"
        (Staged.stage (fun () -> Mlcore.Compress.run compress_chunk)) ]

let () =
  Printf.printf
    "MaxLength Considered Harmful to the RPKI (CoNEXT'17) — reproduction harness\n\
     scale=%.3f fig3_scale=%.3f seed=%d domains=%d (recommended %d)\n"
    scale fig3_scale seed domains
    (Domain.recommended_domain_count ());
  (* The snapshot is lazy so narrow BENCH_ONLY runs (e.g. the
     bench-smoke target) only generate what they use. *)
  let snap = lazy (Dataset.Snapshot.generate ~params:(Dataset.Snapshot.scaled scale) ~seed ()) in
  let section name f = if section_enabled name then f () in
  section "section6" (fun () -> section6 (Lazy.force snap));
  section "audit" (fun () -> audit (Lazy.force snap));
  section "table1" (fun () -> table1 (Lazy.force snap));
  section "figure3" figure3;
  section "attack" attack_eval;
  section "compress" (fun () -> section72 (Lazy.force snap));
  section "validate" (fun () -> section_validate (Lazy.force snap));
  section "arena" (fun () -> section_arena (Lazy.force snap));
  section "rtr" section_rtr;
  section "fanout" section_fanout;
  section "churn" bench_churn;
  section "ablation" (fun () -> ablation (Lazy.force snap));
  section "micro" (fun () -> micro_benchmarks (Lazy.force snap));
  banner "Done"
