# Convenience targets wrapping dune. `bench-smoke` is the CI-grade
# check for the parallel pipelines: a small-scale bench run under
# 2 domains must produce BENCH_compress.json whose parallel outputs
# are bit-identical to the sequential ones (the bench verifies the
# actual output lists and exits non-zero on divergence; the grep
# double-checks the recorded verdicts), and — via
# `bench-validate-smoke` — BENCH_validate.json whose parallel
# bulk-validation checksums agree with the sequential sweeps.

SMOKE_JSON := BENCH_smoke.json
VALIDATE_SMOKE_JSON := BENCH_validate_smoke.json
SIM_SMOKE_JSON := BENCH_rtr_smoke.json
FANOUT_SMOKE_JSON := BENCH_rtr_fanout_smoke.json
ARENA_SMOKE_JSON := BENCH_arena_smoke.json
CHURN_SMOKE_JSON := BENCH_churn_smoke.json

.PHONY: build test lint lint-typed check check-sanitize bench bench-smoke \
	bench-validate-smoke sim-smoke bench-fanout-smoke bench-arena-smoke \
	bench-churn-smoke clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-smoke: bench-validate-smoke
	rm -f $(SMOKE_JSON)
	BENCH_SCALE=0.05 RPKI_DOMAINS=2 BENCH_ONLY=compress BENCH_JSON=$(SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(SMOKE_JSON) || { echo "bench-smoke: $(SMOKE_JSON) missing"; exit 1; }
	@grep -q '"outputs_identical": true' $(SMOKE_JSON) || \
		{ echo "bench-smoke: no identical parallel run recorded"; exit 1; }
	@! grep -q '"outputs_identical": false' $(SMOKE_JSON) || \
		{ echo "bench-smoke: parallel compression drifted from sequential"; exit 1; }
	@echo "bench-smoke: OK"

bench-validate-smoke:
	rm -f $(VALIDATE_SMOKE_JSON)
	BENCH_SCALE=0.05 RPKI_DOMAINS=2 BENCH_ONLY=validate \
		BENCH_VALIDATE_JSON=$(VALIDATE_SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(VALIDATE_SMOKE_JSON) || \
		{ echo "bench-validate-smoke: $(VALIDATE_SMOKE_JSON) missing"; exit 1; }
	@grep -q '"schema": "rpki-maxlen/bench-validate/v1"' $(VALIDATE_SMOKE_JSON) || \
		{ echo "bench-validate-smoke: bad schema"; exit 1; }
	@grep -q '"agrees": true' $(VALIDATE_SMOKE_JSON) || \
		{ echo "bench-validate-smoke: no agreeing parallel run recorded"; exit 1; }
	@! grep -q '"agrees": false' $(VALIDATE_SMOKE_JSON) || \
		{ echo "bench-validate-smoke: parallel validation drifted from sequential"; exit 1; }
	@echo "bench-validate-smoke: OK"

# Arena smoke: a small-scale arena-vs-record run must produce
# BENCH_arena.json with every per-query output element-wise identical
# to the record oracle and the arena side strictly faster on every
# workload (the bench exits non-zero on either violation; the greps
# double-check the recorded verdicts).
bench-arena-smoke:
	rm -f $(ARENA_SMOKE_JSON)
	BENCH_SCALE=0.05 RPKI_DOMAINS=2 BENCH_ONLY=arena \
		BENCH_ARENA_JSON=$(ARENA_SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(ARENA_SMOKE_JSON) || \
		{ echo "bench-arena-smoke: $(ARENA_SMOKE_JSON) missing"; exit 1; }
	@grep -q '"schema": "rpki-maxlen/bench-arena/v1"' $(ARENA_SMOKE_JSON) || \
		{ echo "bench-arena-smoke: bad schema"; exit 1; }
	@grep -q '"outputs_agree": true' $(ARENA_SMOKE_JSON) || \
		{ echo "bench-arena-smoke: arena output diverged from the record oracle"; exit 1; }
	@grep -q '"arena_faster": true' $(ARENA_SMOKE_JSON) || \
		{ echo "bench-arena-smoke: arena path not strictly faster"; exit 1; }
	@echo "bench-arena-smoke: OK"

# Live-churn smoke: a reduced timeline replay through the incremental
# engine must stay bit-identical to the per-transition batch recompute
# AND come in strictly cheaper than it, then serve the resulting
# compressed sets over a scripted RTR run that converges (the bench
# exits non-zero on any violation; the greps double-check the recorded
# verdicts).
bench-churn-smoke:
	rm -f $(CHURN_SMOKE_JSON)
	BENCH_ONLY=churn BENCH_CHURN_SCALE=0.01 BENCH_CHURN_ROUTERS=20 \
		BENCH_CHURN_JSON=$(CHURN_SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(CHURN_SMOKE_JSON) || \
		{ echo "bench-churn-smoke: $(CHURN_SMOKE_JSON) missing"; exit 1; }
	@grep -q '"schema": "rpki-maxlen/bench-churn/v1"' $(CHURN_SMOKE_JSON) || \
		{ echo "bench-churn-smoke: bad schema"; exit 1; }
	@grep -q '"incremental_matches_batch": true' $(CHURN_SMOKE_JSON) || \
		{ echo "bench-churn-smoke: incremental state diverged from batch"; exit 1; }
	@! grep -q '"identical": false' $(CHURN_SMOKE_JSON) || \
		{ echo "bench-churn-smoke: a transition diverged from batch"; exit 1; }
	@grep -q '"ok": true' $(CHURN_SMOKE_JSON) || \
		{ echo "bench-churn-smoke: the churn-scripted RTR run did not converge"; exit 1; }
	@echo "bench-churn-smoke: OK"

# Fault-injection smoke: a reduced RTR sweep (every fault policy, a
# handful of seeds) must satisfy the convergence invariant and replay
# deterministically. The bench exits non-zero on any violation; the
# greps double-check the recorded verdicts.
sim-smoke:
	rm -f $(SIM_SMOKE_JSON)
	BENCH_RTR_SEEDS=10 BENCH_ONLY=rtr BENCH_RTR_JSON=$(SIM_SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(SIM_SMOKE_JSON) || { echo "sim-smoke: $(SIM_SMOKE_JSON) missing"; exit 1; }
	@grep -q '"schema": "rpki-maxlen/bench-rtr/v1"' $(SIM_SMOKE_JSON) || \
		{ echo "sim-smoke: bad schema"; exit 1; }
	@grep -q '"all_ok": true' $(SIM_SMOKE_JSON) || \
		{ echo "sim-smoke: a run violated the convergence invariant"; exit 1; }
	@grep -q '"deterministic": true' $(SIM_SMOKE_JSON) || \
		{ echo "sim-smoke: replay diverged"; exit 1; }
	@echo "sim-smoke: OK"

# Encode-once smoke: one reduced fan-out run (1k sessions, mixed fault
# policies) must hold the one-delta-encode-per-publish invariant and
# end with >=90% of the fleet Fresh. The bench exits non-zero on
# either violation; the greps double-check the recorded verdict.
bench-fanout-smoke:
	rm -f $(FANOUT_SMOKE_JSON)
	BENCH_ONLY=fanout BENCH_FANOUT_SESSIONS=1000 \
		BENCH_FANOUT_JSON=$(FANOUT_SMOKE_JSON) \
		dune exec bench/main.exe
	@test -f $(FANOUT_SMOKE_JSON) || \
		{ echo "bench-fanout-smoke: $(FANOUT_SMOKE_JSON) missing"; exit 1; }
	@grep -q '"schema": "rpki-maxlen/bench-rtr-fanout/v1"' $(FANOUT_SMOKE_JSON) || \
		{ echo "bench-fanout-smoke: bad schema"; exit 1; }
	@grep -q '"encode_once_ok": true' $(FANOUT_SMOKE_JSON) || \
		{ echo "bench-fanout-smoke: more than one encode per serial bump"; exit 1; }
	@echo "bench-fanout-smoke: OK"

clean:
	dune clean
	rm -f BENCH_compress.json BENCH_validate.json BENCH_rtr.json \
		BENCH_rtr_fanout.json BENCH_arena.json BENCH_churn.json \
		$(SMOKE_JSON) $(VALIDATE_SMOKE_JSON) $(SIM_SMOKE_JSON) \
		$(FANOUT_SMOKE_JSON) $(ARENA_SMOKE_JSON) $(CHURN_SMOKE_JSON) \
		$(LINT_JSON)

LINT_JSON := LINT_report.json

lint:
	@rm -f $(LINT_JSON)
	dune build bin/lint/lint_main.exe
	dune exec bin/lint/lint_main.exe -- --format json --out $(LINT_JSON)
	@echo "lint: OK (report in $(LINT_JSON))"

# Typed lint: the interprocedural rules (R8-R10) read the .cmt
# artifacts a full build leaves under _build, so build first — without
# artifacts the run would silently degrade to the syntactic rules.
lint-typed:
	@rm -f $(LINT_JSON)
	dune build
	dune exec bin/lint/lint_main.exe -- --typed --format json --out $(LINT_JSON)
	@grep -q '"typed_units": [1-9]' $(LINT_JSON) || \
		{ echo "lint-typed: typed phase did not run (no .cmt artifacts?)"; exit 1; }
	@echo "lint-typed: OK (report in $(LINT_JSON))"

# Handle-safety gate: re-run the arena differential suites and the
# netsim sweep with the sanitizer on (ARENA_SANITIZE=1), so every
# store widens its handles with generation tags, poisons freed slots
# and bounds/liveness/generation-checks every accessor. Any stale or
# cross-store handle the normal build would silently resolve raises
# San.Violation here and fails the run. The arena suite also contains
# a deliberately-stale-handle test asserting the sanitizer does fire.
check-sanitize: build
	ARENA_SANITIZE=1 dune exec test/test_arena.exe
	ARENA_SANITIZE=1 dune exec test/test_compress.exe
	ARENA_SANITIZE=1 dune exec test/test_validation.exe
	ARENA_SANITIZE=1 dune exec test/test_churn.exe
	ARENA_SANITIZE=1 dune exec test/test_netsim.exe
	@echo "check-sanitize: OK"

# The one-stop gate: build everything, run the test suites, lint the
# tree (typed phase included), and smoke-check the parallel pipelines,
# the RTR simulator, the encode-once fan-out, the arena-vs-record
# data plane and the live-churn incremental engine.
check: build test lint-typed bench-smoke sim-smoke bench-fanout-smoke bench-arena-smoke \
		bench-churn-smoke
	@echo "check: OK"
